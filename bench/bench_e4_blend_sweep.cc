// E4 — Content/location blend sweep (reconstruction of the paper's α
// figure): Combined quality as the location blend weight α goes 0 → 1,
// overall and per query class.
//
// Expected shape: unimodal in α with a class-dependent optimum —
// location-heavy queries prefer high α, content-heavy queries low α,
// which motivates the entropy-adaptive blend (E5).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  std::vector<double> alphas;
  std::vector<core::EngineOptions> configs;
  for (double alpha = 0.0; alpha <= 1.0001; alpha += 0.125) {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.alpha = alpha;
    alphas.push_back(alpha);
    configs.push_back(options);
  }
  WallTimer timer;
  const std::vector<eval::StrategyMetrics> results =
      harness.RunManyAveraged(configs, config.repetitions);

  Table table({"alpha", "MRR", "NDCG@10", "avg_rank", "rank_content",
               "rank_loc", "rank_mixed"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const eval::StrategyMetrics& m = results[i];
    table.AddNumericRow(
        FormatDouble(alphas[i], 3),
        {m.mrr, m.ndcg10, m.avg_rank_relevant, m.avg_rank_by_class[0],
         m.avg_rank_by_class[1], m.avg_rank_by_class[2]},
        3);
  }
  table.Print(std::cout, "E4: Combined quality vs location blend alpha");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
