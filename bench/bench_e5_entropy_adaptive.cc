// E5 — Entropy-adaptive blending (reconstruction of the paper's
// query-characterization table): the fixed-α Combined strategy at three
// settings vs the entropy-adaptive blend that picks α per query from its
// click location entropy.
//
// Expected shape: each fixed α wins somewhere and loses somewhere; the
// adaptive blend tracks the best fixed α per class without knowing the
// class, and wins (or ties the best) overall.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  std::vector<std::string> labels;
  std::vector<core::EngineOptions> configs;
  for (double alpha : {0.2, 0.5, 0.8}) {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.alpha = alpha;
    labels.push_back("fixed a=" + FormatDouble(alpha, 1));
    configs.push_back(options);
  }
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.entropy_adaptive_alpha = true;
    labels.push_back("entropy-adaptive");
    configs.push_back(options);
  }

  WallTimer timer;
  const std::vector<eval::StrategyMetrics> results =
      harness.RunManyAveraged(configs, config.repetitions);

  Table table({"config", "MRR", "NDCG@10", "avg_rank", "rank_content",
               "rank_loc", "rank_mixed"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const eval::StrategyMetrics& m = results[i];
    table.AddNumericRow(
        labels[i],
        {m.mrr, m.ndcg10, m.avg_rank_relevant, m.avg_rank_by_class[0],
         m.avg_rank_by_class[1], m.avg_rank_by_class[2]},
        3);
  }
  table.Print(std::cout,
              "E5: fixed blend vs click-entropy-adaptive blend");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
