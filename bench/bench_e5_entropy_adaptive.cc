// E5 — Entropy-adaptive blending (reconstruction of the paper's
// query-characterization table): the fixed-α Combined strategy at three
// settings vs the entropy-adaptive blend that picks α per query from its
// click location entropy.
//
// Expected shape: each fixed α wins somewhere and loses somewhere; the
// adaptive blend tracks the best fixed α per class without knowing the
// class, and wins (or ties the best) overall.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  Table table({"config", "MRR", "NDCG@10", "avg_rank", "rank_content",
               "rank_loc", "rank_mixed"});
  auto add_row = [&](const std::string& label,
                     const core::EngineOptions& options) {
    const eval::StrategyMetrics m =
        harness.RunAveraged(options, config.repetitions);
    table.AddNumericRow(
        label,
        {m.mrr, m.ndcg10, m.avg_rank_relevant, m.avg_rank_by_class[0],
         m.avg_rank_by_class[1], m.avg_rank_by_class[2]},
        3);
  };

  for (double alpha : {0.2, 0.5, 0.8}) {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.alpha = alpha;
    add_row("fixed a=" + FormatDouble(alpha, 1), options);
  }
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.entropy_adaptive_alpha = true;
    add_row("entropy-adaptive", options);
  }
  table.Print(std::cout,
              "E5: fixed blend vs click-entropy-adaptive blend");
  return 0;
}
