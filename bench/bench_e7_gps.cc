// E7 — GPS augmentation (reconstruction of the paper's mobile-scenario
// table): Combined vs Combined+GPS as training data grows, so the
// cold-start value of physical-position evidence is visible. All users
// carry GPS traces in this world so the comparison isn't diluted.
//
// Expected shape: with little or no clickthrough, GPS-seeded location
// profiles give Combined+GPS a clear lead on location-heavy queries;
// the gap narrows as click-learned profiles catch up.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  config.world.users.gps_fraction = 1.0;  // Everyone is a mobile user.
  eval::World world(config.world);

  // Every (train_days, strategy) cell needs its own SimulationOptions,
  // so the grid is flattened into one task list over per-cell harnesses
  // (sequential inside; the pool parallelizes across cells).
  const std::vector<int> day_points = {0, 2, 4, 8, 12};
  const ranking::Strategy cell_strategies[] = {
      ranking::Strategy::kCombined, ranking::Strategy::kCombinedGps};
  const int num_days = static_cast<int>(day_points.size());
  std::vector<std::unique_ptr<eval::SimulationHarness>> harnesses;
  for (int days : day_points) {
    eval::SimulationOptions sim = config.sim;
    sim.train_days = days;
    sim.threads = 1;
    harnesses.push_back(
        std::make_unique<eval::SimulationHarness>(&world, sim));
  }
  WallTimer timer;
  std::vector<eval::StrategyMetrics> cells(num_days * 2);
  ParallelFor(ResolveThreadCount(config.sim.threads), num_days * 2,
              [&](int t) {
                const int d = t / 2;
                cells[t] = harnesses[d]->RunAveraged(
                    bench::MakeEngineOptions(cell_strategies[t % 2]),
                    config.repetitions);
              });

  Table table({"train_days", "combined_MRR", "gps_MRR", "combined_rank_loc",
               "gps_rank_loc", "combined_NDCG", "gps_NDCG"});
  for (int d = 0; d < num_days; ++d) {
    const eval::StrategyMetrics& combined = cells[2 * d];
    const eval::StrategyMetrics& gps = cells[2 * d + 1];
    table.AddNumericRow(
        std::to_string(day_points[d]),
        {combined.mrr, gps.mrr, combined.avg_rank_by_class[1],
         gps.avg_rank_by_class[1], combined.ndcg10, gps.ndcg10},
        3);
  }
  table.Print(std::cout,
              "E7: GPS augmentation vs training days (all-mobile world)");
  std::cout << "[harness] wall-clock " << FormatDouble(timer.ElapsedSeconds(), 2)
            << " s on " << ResolveThreadCount(config.sim.threads)
            << " thread(s)\n";
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
