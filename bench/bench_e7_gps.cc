// E7 — GPS augmentation (reconstruction of the paper's mobile-scenario
// table): Combined vs Combined+GPS as training data grows, so the
// cold-start value of physical-position evidence is visible. All users
// carry GPS traces in this world so the comparison isn't diluted.
//
// Expected shape: with little or no clickthrough, GPS-seeded location
// profiles give Combined+GPS a clear lead on location-heavy queries;
// the gap narrows as click-learned profiles catch up.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  config.world.users.gps_fraction = 1.0;  // Everyone is a mobile user.
  eval::World world(config.world);

  Table table({"train_days", "combined_MRR", "gps_MRR", "combined_rank_loc",
               "gps_rank_loc", "combined_NDCG", "gps_NDCG"});
  for (int days : {0, 2, 4, 8, 12}) {
    eval::SimulationOptions sim = config.sim;
    sim.train_days = days;
    eval::SimulationHarness harness(&world, sim);
    const eval::StrategyMetrics combined = harness.RunAveraged(
        bench::MakeEngineOptions(ranking::Strategy::kCombined),
        config.repetitions);
    const eval::StrategyMetrics gps = harness.RunAveraged(
        bench::MakeEngineOptions(ranking::Strategy::kCombinedGps),
        config.repetitions);
    table.AddNumericRow(
        std::to_string(days),
        {combined.mrr, gps.mrr, combined.avg_rank_by_class[1],
         gps.avg_rank_by_class[1], combined.ndcg10, gps.ndcg10},
        3);
  }
  table.Print(std::cout,
              "E7: GPS augmentation vs training days (all-mobile world)");
  return 0;
}
