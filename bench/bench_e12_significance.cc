// E12 — Paired significance analysis: per-impression reciprocal-rank and
// NDCG@10 deltas of each personalized strategy against the baseline,
// with paired t statistics and win/loss counts. The test protocol is
// deterministic and identical across configurations, so pairing is
// exact.
//
// |t| > ~2 marks significance at p < 0.05 for these sample sizes.

#include "bench_common.h"
#include "eval/stats.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  // All five configurations (baseline first) run concurrently; RunMany
  // keeps outcome lists index-aligned across configurations, which is
  // exactly the pairing the t-test below relies on.
  const ranking::Strategy strategies[] = {ranking::Strategy::kContentOnly,
                                          ranking::Strategy::kLocationOnly,
                                          ranking::Strategy::kCombined,
                                          ranking::Strategy::kCombinedGps};
  std::vector<core::EngineOptions> configs;
  configs.push_back(bench::MakeEngineOptions(ranking::Strategy::kBaseline));
  for (ranking::Strategy strategy : strategies) {
    configs.push_back(bench::MakeEngineOptions(strategy));
  }
  WallTimer timer;
  std::vector<std::vector<eval::ImpressionOutcome>> all_outcomes;
  harness.RunMany(configs, &all_outcomes);
  const std::vector<eval::ImpressionOutcome>& baseline_outcomes =
      all_outcomes[0];

  Table table({"strategy vs baseline", "metric", "mean", "base", "delta",
               "t", "win/loss/tie"});
  for (size_t s = 0; s < std::size(strategies); ++s) {
    const ranking::Strategy strategy = strategies[s];
    const std::vector<eval::ImpressionOutcome>& outcomes =
        all_outcomes[s + 1];
    const struct {
      const char* name;
      eval::MetricExtractor extractor;
    } metrics[] = {{"MRR", eval::ReciprocalRankOf},
                   {"NDCG@10", eval::NdcgOf}};
    for (const auto& metric : metrics) {
      const eval::PairedComparison cmp =
          ComparePaired(outcomes, baseline_outcomes, metric.extractor);
      table.AddRow({ranking::StrategyToString(strategy), metric.name,
                    FormatDouble(cmp.mean_a, 3), FormatDouble(cmp.mean_b, 3),
                    FormatDouble(cmp.mean_delta, 4),
                    FormatDouble(cmp.t_statistic, 2),
                    std::to_string(cmp.wins) + "/" +
                        std::to_string(cmp.losses) + "/" +
                        std::to_string(cmp.ties)});
    }
  }
  table.Print(std::cout,
              "E12: paired per-impression significance vs baseline");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
