// E13 — Interest drift (extension / future-work experiment): halfway
// through the training period every user RELOCATES to a different city.
// Profiles learned before the move become wrong; the exponential profile
// decay controls how quickly the engine forgets. Sweeps the decay factor
// and reports post-move quality on location-heavy queries.
//
// Expected shape: with no decay (1.0) the stale home preference lingers
// and post-move location quality suffers; moderate decay adapts fastest;
// extreme decay forgets faster than it can relearn.

#include "bench_common.h"

namespace {

using namespace pws;

// Runs train(move-aware) + test with the given decay; returns metrics on
// the post-move user identities.
eval::StrategyMetrics RunWithMove(const eval::World& world,
                                  const eval::SimulationHarness& harness,
                                  const bench::BenchConfig& config,
                                  double daily_decay) {
  core::EngineOptions options =
      bench::MakeEngineOptions(ranking::Strategy::kCombined);
  options.profile_update.daily_decay = daily_decay;
  core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                         options);

  // Post-move identities: same tastes, new home (deterministic shuffle
  // of home cities across users).
  std::vector<click::SimulatedUser> moved = world.users();
  for (size_t u = 0; u < moved.size(); ++u) {
    moved[u].home_city =
        world.users()[(u + moved.size() / 2) % moved.size()].home_city;
    moved[u].place_affinity.clear();
  }

  Random rng(config.sim.seed);
  for (const auto& user : world.users()) engine.RegisterUser(user.id);
  const int total_days = config.sim.train_days;
  const int move_day = total_days / 2;
  for (int day = 0; day < total_days; ++day) {
    for (size_t u = 0; u < world.users().size(); ++u) {
      const auto& identity = day < move_day ? world.users()[u] : moved[u];
      for (int q = 0; q < config.sim.queries_per_user_day; ++q) {
        const auto& intent = harness.SampleQuery(identity, rng);
        auto page = engine.Serve(identity.id, intent.text);
        const auto record = world.click_model().Simulate(
            identity, intent, page.ShownPage(), world.corpus(), day, rng);
        engine.Observe(identity.id, page, record);
      }
    }
    engine.AdvanceDay();
    engine.TrainAllUsers();
  }

  // Test against the post-move identities.
  eval::StrategyMetrics metrics;
  eval::MeanAccumulator mrr;
  eval::MeanAccumulator loc_rank;
  for (const auto& identity : moved) {
    for (const auto* intent : harness.TestQueriesFor(identity)) {
      auto page = engine.Serve(identity.id, intent->text);
      const auto shown = page.ShownPage();
      eval::GradeList grades;
      for (const auto& result : shown.results) {
        grades.push_back(world.relevance().TrueGrade(
            identity, *intent, world.corpus().doc(result.doc)));
      }
      mrr.Add(eval::ReciprocalRank(grades));
      if (intent->query_class == click::QueryClass::kLocationHeavy) {
        loc_rank.AddOptional(eval::AverageRankOfRelevant(grades));
      }
      ++metrics.impressions;
    }
  }
  metrics.mrr = mrr.Mean();
  metrics.avg_rank_by_class[1] = loc_rank.Mean();
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  // One independent move-simulation per decay setting: each builds its
  // own engine and RNG, so the sweep parallelizes cleanly.
  const std::vector<double> decays = {1.0, 0.995, 0.97, 0.9, 0.7};
  const int n = static_cast<int>(decays.size());
  std::vector<eval::StrategyMetrics> results(n);
  ParallelFor(ResolveThreadCount(config.sim.threads), n, [&](int t) {
    results[t] = RunWithMove(world, harness, config, decays[t]);
  });

  Table table({"daily_decay", "post-move MRR", "post-move rank_loc"});
  for (int t = 0; t < n; ++t) {
    table.AddNumericRow(FormatDouble(decays[t], 3),
                        {results[t].mrr, results[t].avg_rank_by_class[1]}, 3);
  }
  table.Print(std::cout,
              "E13: profile decay vs mid-simulation relocation (extension)");
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
