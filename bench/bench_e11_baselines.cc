// E11 — Alternative personalization baselines from the literature,
// under the identical protocol: P-Click (re-promote this user's past
// clicks for the same query), G-Click (pooled across users), a random
// re-ranker (control lower bound), and the paper's Combined method.
//
// Expected shape: random << backend baseline; P-/G-Click recover some of
// the repeated-query gains but cannot generalize to unseen queries or to
// documents never clicked; Combined beats both because concept/location
// profiles transfer across queries.

#include "baselines/click_history.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  Table table({"method", "avg_rank", "MRR", "NDCG@10", "CTR@1"});
  auto add = [&](const std::string& label, const eval::StrategyMetrics& m) {
    table.AddNumericRow(
        label, {m.avg_rank_relevant, m.mrr, m.ndcg10, m.ctr_at_1}, 3);
  };

  add("backend baseline",
      harness.RunAveraged(
          bench::MakeEngineOptions(ranking::Strategy::kBaseline), 1));
  {
    eval::PersonalizerFactory factory = [&world]() {
      return std::make_unique<baselines::RandomReRanker>(
          &world.search_backend(), 99);
    };
    add("random re-rank",
        harness.RunPersonalizer(factory, false, nullptr));
  }
  {
    eval::PersonalizerFactory factory = [&world]() {
      baselines::ClickHistoryOptions options;
      options.mode = baselines::ClickHistoryMode::kPersonal;
      return std::make_unique<baselines::ClickHistoryPersonalizer>(
          &world.search_backend(), options);
    };
    add("p-click", harness.RunPersonalizer(factory, false, nullptr));
  }
  {
    eval::PersonalizerFactory factory = [&world]() {
      baselines::ClickHistoryOptions options;
      options.mode = baselines::ClickHistoryMode::kGlobal;
      return std::make_unique<baselines::ClickHistoryPersonalizer>(
          &world.search_backend(), options);
    };
    add("g-click", harness.RunPersonalizer(factory, false, nullptr));
  }
  add("combined (this paper)",
      harness.RunAveraged(
          bench::MakeEngineOptions(ranking::Strategy::kCombined),
          config.repetitions));

  table.Print(std::cout, "E11: literature baselines vs the Combined method");
  return 0;
}
