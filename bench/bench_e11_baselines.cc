// E11 — Alternative personalization baselines from the literature,
// under the identical protocol: P-Click (re-promote this user's past
// clicks for the same query), G-Click (pooled across users), a random
// re-ranker (control lower bound), and the paper's Combined method.
//
// Expected shape: random << backend baseline; P-/G-Click recover some of
// the repeated-query gains but cannot generalize to unseen queries or to
// documents never clicked; Combined beats both because concept/location
// profiles transfer across queries.

#include "baselines/click_history.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  // Heterogeneous methods (engine configurations and baseline
  // personalizers) become uniform pool tasks: slot t holds method t's
  // metrics, and rows are emitted in slot order afterwards.
  struct Method {
    std::string label;
    std::function<eval::StrategyMetrics()> run;
  };
  std::vector<Method> methods;
  methods.push_back({"backend baseline", [&] {
    return harness.RunAveraged(
        bench::MakeEngineOptions(ranking::Strategy::kBaseline), 1);
  }});
  methods.push_back({"random re-rank", [&] {
    eval::PersonalizerFactory factory = [&world]() {
      return std::make_unique<baselines::RandomReRanker>(
          &world.search_backend(), 99);
    };
    return harness.RunPersonalizer(factory, false, nullptr);
  }});
  methods.push_back({"p-click", [&] {
    eval::PersonalizerFactory factory = [&world]() {
      baselines::ClickHistoryOptions options;
      options.mode = baselines::ClickHistoryMode::kPersonal;
      return std::make_unique<baselines::ClickHistoryPersonalizer>(
          &world.search_backend(), options);
    };
    return harness.RunPersonalizer(factory, false, nullptr);
  }});
  methods.push_back({"g-click", [&] {
    eval::PersonalizerFactory factory = [&world]() {
      baselines::ClickHistoryOptions options;
      options.mode = baselines::ClickHistoryMode::kGlobal;
      return std::make_unique<baselines::ClickHistoryPersonalizer>(
          &world.search_backend(), options);
    };
    return harness.RunPersonalizer(factory, false, nullptr);
  }});
  methods.push_back({"combined (this paper)", [&] {
    return harness.RunAveraged(
        bench::MakeEngineOptions(ranking::Strategy::kCombined),
        config.repetitions);
  }});

  WallTimer timer;
  std::vector<eval::StrategyMetrics> results(methods.size());
  ParallelFor(ResolveThreadCount(config.sim.threads),
              static_cast<int>(methods.size()),
              [&](int t) { results[t] = methods[t].run(); });

  Table table({"method", "avg_rank", "MRR", "NDCG@10", "CTR@1"});
  for (size_t i = 0; i < methods.size(); ++i) {
    const eval::StrategyMetrics& m = results[i];
    table.AddNumericRow(methods[i].label,
                        {m.avg_rank_relevant, m.mrr, m.ndcg10, m.ctr_at_1},
                        3);
  }
  table.Print(std::cout, "E11: literature baselines vs the Combined method");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
