// E1 — Overall comparison table (reconstruction of the paper's headline
// table): average rank of relevant results, MRR, NDCG@10 and simulated
// CTR@1 for Baseline vs ContentOnly vs LocationOnly vs Combined vs
// Combined+GPS, on the shared world.
//
// Expected shape: every personalized strategy beats Baseline on average
// rank; Combined beats both single-aspect strategies; Combined+GPS is at
// least as good as Combined.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  const ranking::Strategy strategies[] = {
      ranking::Strategy::kBaseline, ranking::Strategy::kContentOnly,
      ranking::Strategy::kLocationOnly, ranking::Strategy::kCombined,
      ranking::Strategy::kCombinedGps};

  std::vector<core::EngineOptions> configs;
  for (ranking::Strategy strategy : strategies) {
    configs.push_back(bench::MakeEngineOptions(strategy));
  }
  WallTimer timer;
  const std::vector<eval::StrategyMetrics> results =
      harness.RunManyAveraged(configs, config.repetitions);

  Table table({"strategy", "avg_rank", "improv_%", "MRR", "NDCG@10",
               "CTR@1", "impressions"});
  Table by_class({"strategy", "content", "loc-heavy", "mixed",
                  "ctr1_content", "ctr1_loc", "ctr1_mixed"});
  const double baseline_rank = results[0].avg_rank_relevant;
  for (size_t i = 0; i < configs.size(); ++i) {
    const ranking::Strategy strategy = strategies[i];
    const eval::StrategyMetrics& m = results[i];
    table.AddRow({ranking::StrategyToString(strategy),
                  FormatDouble(m.avg_rank_relevant, 3),
                  FormatDouble(bench::ImprovementLowerBetter(
                                   baseline_rank, m.avg_rank_relevant),
                               2),
                  FormatDouble(m.mrr, 3), FormatDouble(m.ndcg10, 3),
                  FormatDouble(m.ctr_at_1, 3),
                  std::to_string(m.impressions)});
    by_class.AddRow({ranking::StrategyToString(strategy),
                     FormatDouble(m.avg_rank_by_class[0], 3),
                     FormatDouble(m.avg_rank_by_class[1], 3),
                     FormatDouble(m.avg_rank_by_class[2], 3),
                     FormatDouble(m.ctr1_by_class[0], 3),
                     FormatDouble(m.ctr1_by_class[1], 3),
                     FormatDouble(m.ctr1_by_class[2], 3)});
  }
  table.Print(std::cout,
              "E1: overall strategy comparison (lower avg_rank is better)");
  by_class.Print(std::cout,
                 "E1b: average rank / CTR@1 by query class");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
