#ifndef PWS_BENCH_BENCH_COMMON_H_
#define PWS_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/arg_parser.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace pws::bench {

/// Shared workload flags so every experiment binary can be scaled up or
/// down from the command line:
///   --docs=N --users=N --queries_per_class=N --train_days=N --test_days=N
///   --queries_per_user_day=N --seed=N --sim_seed=N --threads=N
/// plus the observability flags every driver understands:
///   --metrics-out=FILE  write a JSON metrics snapshot on exit (and print
///                       the human-readable metrics tables to stdout)
///   --log-level=LEVEL   debug | info | warning | error
struct BenchConfig {
  eval::WorldConfig world;
  eval::SimulationOptions sim;
  /// Seed-averaged repetitions per configuration (--reps).
  int repetitions = 3;
  /// Destination of the end-of-run metrics JSON snapshot (empty = off).
  std::string metrics_out;
};

/// Applies --log-level (accepting --log_level too); exits on a bad value
/// so a typo never silently runs at the wrong verbosity.
inline void ApplyLogLevelFlag(const ArgParser& args) {
  const std::string text =
      args.GetString("log-level", args.GetString("log_level", ""));
  if (text.empty()) return;
  LogLevel level;
  if (!ParseLogLevel(text, &level)) {
    std::cerr << "invalid --log-level '" << text
              << "' (want debug|info|warning|error)\n";
    std::exit(2);
  }
  SetLogLevel(level);
}

inline BenchConfig ParseBenchConfig(int argc, const char* const* argv) {
  ArgParser args(argc, argv);
  BenchConfig config;
  config.world.seed = args.GetInt("seed", 42);
  config.world.num_topics = static_cast<int>(args.GetInt("topics", 16));
  config.world.corpus.num_documents =
      static_cast<int>(args.GetInt("docs", 12000));
  config.world.users.num_users = static_cast<int>(args.GetInt("users", 40));
  config.world.queries.queries_per_class =
      static_cast<int>(args.GetInt("queries_per_class", 40));
  // The engine re-ranks a deeper pool than it displays: personalization
  // needs candidates to promote (the paper re-ranks the backend top-k).
  config.world.backend.page_size =
      static_cast<int>(args.GetInt("page_size", 30));
  config.sim.seed = args.GetInt("sim_seed", 7);
  config.sim.train_days = static_cast<int>(args.GetInt("train_days", 12));
  config.sim.queries_per_user_day =
      static_cast<int>(args.GetInt("queries_per_user_day", 6));
  config.sim.test_queries_per_user =
      static_cast<int>(args.GetInt("test_queries_per_user", 30));
  config.repetitions = static_cast<int>(args.GetInt("reps", 3));
  // Harness worker threads; 0 = one per hardware core. Results are
  // bit-identical for every thread count (see SimulationOptions).
  config.sim.threads = static_cast<int>(args.GetInt("threads", 0));
  config.metrics_out =
      args.GetString("metrics-out", args.GetString("metrics_out", ""));
  ApplyLogLevelFlag(args);
  return config;
}

/// End-of-run metrics export (--metrics-out): prints the registry's
/// human-readable tables to `os` and writes the JSON snapshot next to
/// them. No-op when the flag was absent, so drivers call it
/// unconditionally.
inline void MaybeExportMetrics(std::ostream& os, const BenchConfig& config) {
  if (config.metrics_out.empty()) return;
  const obs::RegistrySnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  os << "\n=== metrics (" << config.metrics_out << ") ===\n"
     << snapshot.ToText();
  // The shared obs writer — the same document shape the server's
  // `metrics` verb and `pws_cli metrics json` produce.
  const Status status =
      WriteStringToFile(config.metrics_out, obs::GlobalMetricsJson());
  if (status.ok()) {
    os << "[metrics] JSON snapshot written to " << config.metrics_out
       << "\n";
  } else {
    PWS_LOG(kError) << "--metrics-out write failed: " << status.ToString();
  }
}

/// One-line wall-clock + cache-counter report every experiment driver
/// prints, so harness speed and serving-layer cache behaviour are
/// visible in each run's output.
inline void PrintHarnessReport(std::ostream& os,
                               const eval::SimulationHarness& harness,
                               const WallTimer& timer) {
  const CacheStats stats = harness.accumulated_cache_stats();
  os << "[harness] wall-clock " << FormatDouble(timer.ElapsedSeconds(), 2)
     << " s on " << ResolveThreadCount(harness.options().threads)
     << " thread(s); query-analysis cache: " << stats.hits << " hits, "
     << stats.misses << " misses, " << stats.evictions << " evictions (hit rate "
     << FormatDouble(100.0 * stats.HitRate(), 1) << "%)\n";
}

/// Engine configuration for one named strategy with the default knobs
/// used across the experiments.
inline core::EngineOptions MakeEngineOptions(ranking::Strategy strategy) {
  core::EngineOptions options;
  options.strategy = strategy;
  return options;
}

/// The relative improvement of `value` over `baseline` in percent, where
/// lower raw values are better (average rank).
inline double ImprovementLowerBetter(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - value) / baseline;
}

/// The relative improvement in percent where higher is better (CTR, P@k).
inline double ImprovementHigherBetter(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

}  // namespace pws::bench

#endif  // PWS_BENCH_BENCH_COMMON_H_
