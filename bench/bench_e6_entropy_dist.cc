// E6 — Click entropy distributions (reconstruction of the paper's
// query-characterization figure): mean click content entropy and click
// location entropy per query class, measured from simulated clickthrough
// collected across all users under the baseline ranking.
//
// Expected shape: location-heavy implicit queries have the highest
// location entropy (different users click different places under the
// same query); explicit queries lower (the query pins the place);
// content-heavy queries carry content entropy but little location
// entropy on their sparse located results.

#include "bench_common.h"
#include "profile/entropy.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);

  // Collect clickthrough with a non-personalizing engine so entropy
  // reflects user behaviour, not the re-ranker.
  core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                         bench::MakeEngineOptions(ranking::Strategy::kBaseline));
  for (const auto& user : world.users()) engine.RegisterUser(user.id);

  eval::SimulationHarness harness(&world, config.sim);
  profile::ClickEntropyTracker tracker;
  Random rng(config.sim.seed);
  for (int day = 0; day < config.sim.train_days; ++day) {
    for (const auto& user : world.users()) {
      for (int q = 0; q < config.sim.queries_per_user_day; ++q) {
        const click::QueryIntent& intent = harness.SampleQuery(user, rng);
        core::PersonalizedPage page = engine.Serve(user.id, intent.text);
        const click::ClickRecord record = world.click_model().Simulate(
            user, intent, page.ShownPage(), world.corpus(), day, rng);
        for (size_t j = 0; j < record.interactions.size(); ++j) {
          if (!record.interactions[j].clicked) continue;
          const int backend_index = page.order[j];
          tracker.AddClick(
              intent.id, page.impression().content_ids(backend_index),
              page.impression().locations_per_result[backend_index]);
        }
      }
    }
  }

  struct Group {
    eval::MeanAccumulator content;
    eval::MeanAccumulator location;
    int queries = 0;
  };
  Group groups[4];
  const char* names[4] = {"content-heavy", "loc-explicit", "loc-implicit",
                          "mixed"};
  // The clickthrough collection above is one sequential trajectory (a
  // single shared RNG and tracker), but the per-query entropy reads are
  // independent: compute them on the pool, then fold in query order so
  // the group means match the sequential loop exactly.
  const auto& pool_queries = world.queries();
  const int num_queries = static_cast<int>(pool_queries.size());
  std::vector<int> clicks(num_queries);
  std::vector<double> content_entropy(num_queries);
  std::vector<double> location_entropy(num_queries);
  ParallelFor(ResolveThreadCount(config.sim.threads), num_queries,
              [&](int i) {
                const int id = pool_queries[i].id;
                clicks[i] = tracker.ClickCount(id);
                content_entropy[i] = tracker.ContentEntropy(id);
                location_entropy[i] = tracker.LocationEntropy(id);
              });
  for (int i = 0; i < num_queries; ++i) {
    if (clicks[i] == 0) continue;
    const auto& intent = pool_queries[i];
    int g = static_cast<int>(intent.query_class);
    if (g == 1) {
      g = intent.implicit_local ? 2 : 1;
    } else if (g == 2) {
      g = 3;
    }
    groups[g].content.Add(content_entropy[i]);
    groups[g].location.Add(location_entropy[i]);
    ++groups[g].queries;
  }

  Table table({"query_group", "queries", "mean_content_entropy",
               "mean_location_entropy"});
  for (int g = 0; g < 4; ++g) {
    table.AddRow({names[g], std::to_string(groups[g].queries),
                  FormatDouble(groups[g].content.Mean(), 3),
                  FormatDouble(groups[g].location.Mean(), 3)});
  }
  table.Print(std::cout,
              "E6: click entropy by query group (nats, from clickthrough)");
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
