// Persistence demo: train a user, save their learned state to disk,
// restart the engine (fresh process state), load, and verify the
// personalized ranking survives — the deployment story for profiles
// that outlive a serving process.
//
// Run:  ./build/examples/persistence_demo [--state_dir=/tmp]

#include <iostream>

#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "io/engine_state_io.h"
#include "util/arg_parser.h"

int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  const std::string state_path =
      args.GetString("state_dir", "/tmp") + "/pws_user_state.txt";

  eval::WorldConfig config;
  config.seed = 77;
  config.corpus.num_documents = 6000;
  config.users.num_users = 4;
  config.backend.page_size = 30;
  eval::World world(config);
  eval::SimulationOptions sim;
  sim.train_days = 6;
  eval::SimulationHarness harness(&world, sim);

  const auto& user = world.users()[0];
  core::EngineOptions options;

  // --- Session 1: train and save. ---
  {
    core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                           options);
    engine.RegisterUser(user.id);
    Random rng(9);
    for (int day = 0; day < sim.train_days; ++day) {
      for (int q = 0; q < 6; ++q) {
        const auto& intent = harness.SampleQuery(user, rng);
        auto page = engine.Serve(user.id, intent.text);
        const auto record = world.click_model().Simulate(
            user, intent, page.ShownPage(), world.corpus(), day, rng);
        engine.Observe(user.id, page, record);
      }
      engine.AdvanceDay();
    }
    engine.TrainUser(user.id);

    const Status saved = io::SaveUserState(
        engine.user_profile(user.id), engine.user_model(user.id), state_path);
    if (!saved.ok()) {
      std::cerr << "save failed: " << saved << "\n";
      return 1;
    }
    std::cout << "Session 1: trained on "
              << engine.user_profile(user.id).impressions_observed()
              << " impressions, saved state to " << state_path << "\n";
    const auto page = engine.Serve(user.id, "hotel booking");
    std::cout << "Session 1 top result: "
              << page.ShownPage().results[0].title << "\n";
  }

  // --- Session 2: fresh engine, load, serve. ---
  {
    core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                           options);
    auto loaded = io::LoadUserState(state_path, &world.ontology());
    if (!loaded.ok()) {
      std::cerr << "load failed: " << loaded.status() << "\n";
      return 1;
    }
    engine.ImportUserState(user.id, std::move(loaded->profile),
                           std::move(loaded->model));
    std::cout << "Session 2: restored "
              << engine.user_profile(user.id).ContentConceptCount()
              << " content concepts and "
              << engine.user_profile(user.id).LocationConceptCount()
              << " location concepts\n";
    const auto page = engine.Serve(user.id, "hotel booking");
    std::cout << "Session 2 top result: "
              << page.ShownPage().results[0].title
              << "  (identical to session 1: the profile survived)\n";
  }
  return 0;
}
