// Quickstart: build a small world, run the personalized engine for one
// simulated user, and watch the ranking adapt to their location and
// topical preferences.
//
// Run:  ./build/examples/quickstart

#include <iostream>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "util/logging.h"

namespace {

void PrintPage(const pws::eval::World& world,
               const pws::core::PersonalizedPage& page, int top_n) {
  const auto shown = page.ShownPage();
  for (int i = 0; i < top_n && i < static_cast<int>(shown.results.size());
       ++i) {
    const auto& result = shown.results[i];
    const auto& doc = world.corpus().doc(result.doc);
    std::string where = "-";
    if (doc.primary_location_truth != pws::geo::kInvalidLocation) {
      where = world.ontology().node(doc.primary_location_truth).name;
    }
    std::cout << "  " << (i + 1) << ". " << result.title << "  [topic="
              << world.topics().topic(doc.primary_topic_truth).name
              << ", location=" << where << "]\n";
  }
}

}  // namespace

int main() {
  // A small world so the example runs in seconds.
  pws::eval::WorldConfig config;
  config.seed = 42;
  config.num_topics = 12;
  config.corpus.num_documents = 6000;
  config.users.num_users = 8;
  config.queries.queries_per_class = 20;
  pws::eval::World world(config);

  pws::core::EngineOptions options;
  options.strategy = pws::ranking::Strategy::kCombined;
  pws::core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                              options);

  // Pick a user and a location-heavy query they would issue.
  const auto& user = world.users()[0];
  engine.RegisterUser(user.id);
  std::cout << "User " << user.id << " lives in "
            << world.ontology().node(user.home_city).name << "\n";

  const std::string query = "hotel booking";
  std::cout << "\nBefore any feedback, query \"" << query << "\":\n";
  auto page = engine.Serve(user.id, query);
  PrintPage(world, page, 5);

  // Simulate two weeks of this user searching and clicking.
  pws::Random rng(7);
  const auto intents = world.QueriesOfClass(
      pws::click::QueryClass::kLocationHeavy);
  for (int day = 0; day < 14; ++day) {
    for (int q = 0; q < 4; ++q) {
      const auto& intent = *intents[rng.UniformUint64(intents.size())];
      auto served = engine.Serve(user.id, intent.text);
      const auto record = world.click_model().Simulate(
          user, intent, served.ShownPage(), world.corpus(), day, rng);
      engine.Observe(user.id, served, record);
    }
    engine.AdvanceDay();
  }
  engine.TrainUser(user.id);

  std::cout << "\nAfter 14 days of clickthrough, query \"" << query
            << "\":\n";
  page = engine.Serve(user.id, query);
  PrintPage(world, page, 5);

  // Inspect the learned profile.
  const auto& profile = engine.user_profile(user.id);
  std::cout << "\nTop learned location preferences:\n";
  for (const auto& [loc, weight] : profile.TopLocations(5)) {
    std::cout << "  " << world.ontology().node(loc).name << "  ("
              << weight << ")\n";
  }
  std::cout << "\nTop learned content concepts:\n";
  for (const auto& [term, weight] : profile.TopContentConcepts(5)) {
    std::cout << "  " << term << "  (" << weight << ")\n";
  }
  return 0;
}
