// Travel-planning scenario: a user who repeatedly researches one
// destination builds up a location preference through clicks alone, and
// the engine starts favouring that region across *different* queries —
// hotel searches inform ski searches (ontology generalization).
//
// Run:  ./build/examples/travel_planner

#include <iostream>

#include "core/pws_engine.h"
#include "eval/world.h"

namespace {

using namespace pws;

// Simulates the user clicking exactly the results about `target_region`
// (a deliberate, deterministic click policy — this example is about the
// profile mechanics, not the stochastic click model).
click::ClickRecord ClickResultsAbout(const eval::World& world,
                                     const core::PersonalizedPage& page,
                                     geo::LocationId target_region) {
  const auto shown = page.ShownPage();
  click::ClickRecord record;
  record.user = 0;
  record.query_text = shown.query;
  bool clicked_any = false;
  for (size_t j = 0; j < shown.results.size(); ++j) {
    click::Interaction interaction;
    interaction.doc = shown.results[j].doc;
    interaction.rank = static_cast<int>(j);
    const auto& doc = world.corpus().doc(shown.results[j].doc);
    if (doc.primary_location_truth != geo::kInvalidLocation &&
        world.ontology().IsAncestorOf(target_region,
                                      doc.primary_location_truth)) {
      interaction.clicked = true;
      interaction.dwell_units = 450.0;  // Long, satisfied reads.
      clicked_any = true;
    }
    record.interactions.push_back(interaction);
  }
  if (clicked_any) {
    for (auto it = record.interactions.rbegin();
         it != record.interactions.rend(); ++it) {
      if (it->clicked) {
        it->last_click_in_session = true;
        break;
      }
    }
  }
  return record;
}

double MeanShownPosition(const eval::World& world,
                         const core::PersonalizedPage& page,
                         geo::LocationId region) {
  const auto shown = page.ShownPage();
  double sum = 0.0;
  int count = 0;
  for (size_t j = 0; j < shown.results.size(); ++j) {
    const auto& doc = world.corpus().doc(shown.results[j].doc);
    if (doc.primary_location_truth != geo::kInvalidLocation &&
        world.ontology().IsAncestorOf(region, doc.primary_location_truth)) {
      sum += static_cast<double>(j + 1);
      ++count;
    }
  }
  return count > 0 ? sum / count : -1.0;
}

}  // namespace

int main() {
  eval::WorldConfig config;
  config.seed = 23;
  config.corpus.num_documents = 9000;
  config.users.num_users = 2;
  config.backend.page_size = 30;
  eval::World world(config);

  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  core::PwsEngine engine(&world.search_backend(), &world.ontology(), options);
  engine.RegisterUser(0);

  // The user is planning a British Columbia trip.
  const auto bc = world.ontology().Lookup("british columbia");
  std::cout << "User researches a British Columbia trip by clicking only\n"
               "BC results on planning queries.\n\n";

  const std::vector<std::string> planning_queries = {
      "hotel rooms", "hotel booking", "restaurant dinner", "hotel suite",
      "restaurant reservation"};
  for (int round = 0; round < 4; ++round) {
    for (const auto& query : planning_queries) {
      auto page = engine.Serve(0, query);
      engine.Observe(0, page, ClickResultsAbout(world, page, bc[0]));
    }
    engine.TrainUser(0);
  }

  // Cross-query transfer: a query vertical the user never issued during
  // planning. Pick the first candidate whose result pool contains BC
  // documents at all (otherwise there is nothing to promote).
  core::PwsEngine cold(&world.search_backend(), &world.ontology(), options);
  cold.RegisterUser(1);
  std::string transfer_query;
  for (const char* candidate :
       {"ski slopes", "ski lift", "snowboard powder", "museum tour",
        "flight airport", "coffee espresso", "apartment rent"}) {
    auto probe = cold.Serve(1, candidate);
    if (MeanShownPosition(world, probe, bc[0]) > 0) {
      transfer_query = candidate;
      break;
    }
  }
  if (transfer_query.empty()) transfer_query = "ski slopes";
  auto personalized = engine.Serve(0, transfer_query);
  const double personalized_pos =
      MeanShownPosition(world, personalized, bc[0]);
  auto baseline = cold.Serve(1, transfer_query);
  const double baseline_pos = MeanShownPosition(world, baseline, bc[0]);

  std::cout << "Mean position of BC results for new query \""
            << transfer_query << "\":\n";
  std::cout << "  cold profile:     " << baseline_pos << "\n";
  std::cout << "  after BC clicks:  " << personalized_pos << "\n\n";

  const auto& profile = engine.user_profile(0);
  std::cout << "Learned location preferences (note the region/country\n"
               "roll-up — clicks on Whistler also credit BC and Canada):\n";
  for (const auto& [loc, weight] : profile.TopLocations(5)) {
    const auto& node = world.ontology().node(loc);
    std::cout << "  " << node.name << " ["
              << geo::LocationLevelToString(node.level) << "]  weight "
              << weight << "\n";
  }
  return 0;
}
