// Profile explorer: runs the full multi-user simulation for a few days,
// then dumps every component the engine learned for one user — content
// concepts, location ontology weights, RankSVM feature weights, and the
// click-entropy view of the query pool. Useful for getting a feel for
// what the system actually learns.
//
// Run:  ./build/examples/profile_explorer [--user=N] [--days=N]

#include <iostream>
#include <vector>

#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "util/arg_parser.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  const int target_user = static_cast<int>(args.GetInt("user", 0));
  const int days = static_cast<int>(args.GetInt("days", 8));

  eval::WorldConfig config;
  config.seed = 31;
  config.corpus.num_documents = 8000;
  config.users.num_users = 12;
  config.users.gps_fraction = 1.0;
  config.backend.page_size = 30;
  eval::World world(config);

  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombinedGps;
  core::PwsEngine engine(&world.search_backend(), &world.ontology(), options);

  eval::SimulationOptions sim;
  sim.train_days = days;
  eval::SimulationHarness harness(&world, sim);

  for (const auto& user : world.users()) {
    engine.RegisterUser(user.id);
    if (!user.gps_trace.empty()) engine.AttachGpsTrace(user.id, user.gps_trace);
  }
  Random rng(17);
  for (int day = 0; day < days; ++day) {
    for (const auto& user : world.users()) {
      for (int q = 0; q < 6; ++q) {
        const auto& intent = harness.SampleQuery(user, rng);
        auto page = engine.Serve(user.id, intent.text);
        const auto record = world.click_model().Simulate(
            user, intent, page.ShownPage(), world.corpus(), day, rng);
        engine.Observe(user.id, page, record);
      }
    }
    engine.AdvanceDay();
    engine.TrainAllUsers();
  }

  const auto& user = world.users()[target_user];
  const auto& profile = engine.user_profile(user.id);

  std::cout << "=== User " << user.id << " ===\n";
  std::cout << "Ground truth: home="
            << world.ontology().node(user.home_city).name
            << ", locality preference "
            << FormatDouble(user.locality_preference, 2) << "\n";
  std::cout << "Favourite topics:";
  for (int t = 0; t < world.topics().num_topics(); ++t) {
    if (user.topic_affinity[t] > 0.1) {
      std::cout << " " << world.topics().topic(t).name;
    }
  }
  std::cout << "\nTravel places:";
  for (const auto& [place, affinity] : user.place_affinity) {
    std::cout << " " << world.ontology().node(place).name << "("
              << FormatDouble(affinity, 2) << ")";
  }
  std::cout << "\n\n";

  Table content({"content concept", "weight"});
  for (const auto& [term, weight] : profile.TopContentConcepts(12)) {
    content.AddRow({term, FormatDouble(weight, 3)});
  }
  content.Print(std::cout, "Learned content concepts (top 12)");

  Table locations({"location", "level", "weight"});
  for (const auto& [loc, weight] : profile.TopLocations(10)) {
    const auto& node = world.ontology().node(loc);
    locations.AddRow({node.name, geo::LocationLevelToString(node.level),
                      FormatDouble(weight, 3)});
  }
  locations.Print(std::cout, "Learned location ontology weights (top 10)");

  Table weights({"feature", "weight"});
  const char* feature_names[] = {
      "content: profile weight sum",  "content: positive fraction",
      "location: query match",        "location: profile affinity",
      "location: direct weight",      "location: page dominant",
      "location: has location",       "location: gps proximity"};
  const std::vector<double> w = engine.user_model(user.id).weights();
  for (int d = 0; d < ranking::kFeatureCount; ++d) {
    weights.AddRow({feature_names[d], FormatDouble(w[d], 3)});
  }
  weights.Print(std::cout, "RankSVM weights (trained on " +
                               std::to_string(engine.training_pair_count(
                                   user.id)) +
                               " preference pairs)");

  return 0;
}
