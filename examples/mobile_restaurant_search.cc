// Mobile scenario: a traveller lands in a new city; their GPS trace —
// not their clicks — tells the engine where they are, and "restaurant
// menu" starts returning nearby places immediately (the paper's
// motivating mobile use case).
//
// Run:  ./build/examples/mobile_restaurant_search

#include <iostream>

#include "core/pws_engine.h"
#include "eval/world.h"

namespace {

using namespace pws;

void PrintTop(const eval::World& world, const core::PersonalizedPage& page,
              int n, const std::string& header) {
  std::cout << header << "\n";
  const auto shown = page.ShownPage();
  for (int i = 0; i < n && i < static_cast<int>(shown.results.size()); ++i) {
    const auto& doc = world.corpus().doc(shown.results[i].doc);
    std::string where = "(no specific place)";
    if (doc.primary_location_truth != geo::kInvalidLocation) {
      where = world.ontology().node(doc.primary_location_truth).name;
    }
    std::cout << "  " << (i + 1) << ". " << shown.results[i].title << " — "
              << where << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  eval::WorldConfig config;
  config.seed = 11;
  config.corpus.num_documents = 8000;
  config.users.num_users = 4;
  config.backend.page_size = 30;
  eval::World world(config);

  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombinedGps;
  core::PwsEngine engine(&world.search_backend(), &world.ontology(), options);

  const click::UserId traveller = 0;
  engine.RegisterUser(traveller);

  const std::string query = "restaurant menu";
  PrintTop(world, engine.Serve(traveller, query), 5,
           "Fresh user, no GPS — generic results for \"" + query + "\":");

  // The device reports a week of fixes around Kyoto.
  const auto kyoto = world.ontology().Lookup("kyoto");
  geo::GpsTraceOptions trace_options;
  trace_options.num_days = 7;
  Random rng(5);
  const geo::GpsTrace trace =
      GenerateGpsTrace(world.ontology(), kyoto[0], trace_options, rng);
  engine.AttachGpsTrace(traveller, trace);
  std::cout << "Attached a 7-day GPS trace around kyoto ("
            << trace.size() << " fixes).\n\n";

  PrintTop(world, engine.Serve(traveller, query), 5,
           "Same query with the GPS-seeded location profile:");

  // The query-location gate: an explicit query is NOT dragged to Kyoto.
  PrintTop(world, engine.Serve(traveller, "restaurant menu berlin"), 5,
           "Explicit \"restaurant menu berlin\" (GPS must not override):");

  const auto& profile = engine.user_profile(traveller);
  std::cout << "GPS-learned location preferences:\n";
  for (const auto& [loc, weight] : profile.TopLocations(4)) {
    std::cout << "  " << world.ontology().node(loc).name << "  (weight "
              << weight << ")\n";
  }
  return 0;
}
