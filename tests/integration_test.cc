// End-to-end integration tests: run the full train/serve protocol on a
// moderate world and check the reproduction's headline *shapes* (see
// DESIGN.md §4). Assertions are deliberately loose — these guard against
// regressions that break the science, not against run-to-run noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "click/click_log.h"
#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"

namespace pws {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 42;
    config.corpus.num_documents = 6000;
    config.users.num_users = 16;
    config.users.gps_fraction = 1.0;
    config.queries.queries_per_class = 30;
    config.backend.page_size = 30;
    world_ = new eval::World(config);

    eval::SimulationOptions sim;
    sim.train_days = 8;
    sim.queries_per_user_day = 6;
    sim.test_queries_per_user = 20;
    harness_ = new eval::SimulationHarness(world_, sim);

    core::EngineOptions baseline;
    baseline.strategy = ranking::Strategy::kBaseline;
    baseline_metrics_ = new eval::StrategyMetrics(harness_->Run(baseline));

    core::EngineOptions combined;
    combined.strategy = ranking::Strategy::kCombined;
    combined_metrics_ =
        new eval::StrategyMetrics(harness_->RunAveraged(combined, 2));
  }
  static void TearDownTestSuite() {
    delete baseline_metrics_;
    delete combined_metrics_;
    delete harness_;
    delete world_;
  }

  static eval::World* world_;
  static eval::SimulationHarness* harness_;
  static eval::StrategyMetrics* baseline_metrics_;
  static eval::StrategyMetrics* combined_metrics_;
};

eval::World* IntegrationTest::world_ = nullptr;
eval::SimulationHarness* IntegrationTest::harness_ = nullptr;
eval::StrategyMetrics* IntegrationTest::baseline_metrics_ = nullptr;
eval::StrategyMetrics* IntegrationTest::combined_metrics_ = nullptr;

TEST_F(IntegrationTest, CombinedDoesNotRegressMrrAndWinsOnLocationRank) {
  // Overall MRR must not regress (the gains concentrate in the
  // location-heavy class, ~1/3 of test queries, so the overall delta is
  // small at this world size — E12 shows it significant at full scale).
  EXPECT_GT(combined_metrics_->mrr, baseline_metrics_->mrr - 0.005);
  // The location-heavy class must show a solid average-rank win.
  EXPECT_LT(combined_metrics_->avg_rank_by_class[1],
            baseline_metrics_->avg_rank_by_class[1] - 0.5);
}

TEST_F(IntegrationTest, CombinedBeatsBaselineOnNdcg) {
  EXPECT_GT(combined_metrics_->ndcg10, baseline_metrics_->ndcg10);
}

TEST_F(IntegrationTest, LocationHeavyQueriesGainMost) {
  const double gain_loc = baseline_metrics_->avg_rank_by_class[1] -
                          combined_metrics_->avg_rank_by_class[1];
  const double gain_content = baseline_metrics_->avg_rank_by_class[0] -
                              combined_metrics_->avg_rank_by_class[0];
  EXPECT_GT(gain_loc, 0.0);
  EXPECT_GT(gain_loc, gain_content);
}

TEST_F(IntegrationTest, CombinedDoesNotTankAnyClass) {
  for (int c = 0; c < 3; ++c) {
    EXPECT_LT(combined_metrics_->avg_rank_by_class[c],
              baseline_metrics_->avg_rank_by_class[c] + 1.5)
        << "class " << c;
  }
}

TEST_F(IntegrationTest, ProfilesLearnRealLocations) {
  // Train one engine manually and check that at least half the users'
  // top profile location is geographically related to their home or
  // travel city (similarity > 0).
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  for (const auto& user : world_->users()) engine.RegisterUser(user.id);
  Random rng(3);
  for (int day = 0; day < 8; ++day) {
    for (const auto& user : world_->users()) {
      for (int q = 0; q < 6; ++q) {
        const auto& intent = harness_->SampleQuery(user, rng);
        auto page = engine.Serve(user.id, intent.text);
        const auto record = world_->click_model().Simulate(
            user, intent, page.ShownPage(), world_->corpus(), day, rng);
        engine.Observe(user.id, page, record);
      }
    }
    engine.AdvanceDay();
  }
  engine.TrainAllUsers();

  int users_with_profiles = 0;
  int home_positive = 0;
  int top_aligned = 0;
  for (const auto& user : world_->users()) {
    const auto& profile = engine.user_profile(user.id);
    const auto top = profile.TopLocations(1);
    if (top.empty() || top[0].second <= 0.0) continue;
    ++users_with_profiles;
    // Positive weight somewhere on the home path (city/region/country).
    bool positive = false;
    for (geo::LocationId node :
         world_->ontology().PathToRoot(user.home_city)) {
      if (node == world_->ontology().root()) break;
      if (profile.LocationWeight(node) > 0.0) positive = true;
    }
    if (positive) ++home_positive;
    // Top-1 concept related to home or a travel place.
    double sim = world_->ontology().Similarity(top[0].first, user.home_city);
    for (const auto& [place, affinity] : user.place_affinity) {
      sim = std::max(sim, world_->ontology().Similarity(top[0].first, place));
    }
    if (sim > 0.0) ++top_aligned;
  }
  ASSERT_GT(users_with_profiles, 8);
  // Most users accumulate positive evidence on their own home path.
  EXPECT_GT(home_positive * 2, users_with_profiles);
  // The single top concept aligns with home/travel far above the ~7%
  // random-country chance.
  EXPECT_GE(top_aligned * 5, users_with_profiles);
}

TEST_F(IntegrationTest, ClickLogRoundTripsThroughTsv) {
  // Simulate a day of logging, serialize, parse, compare.
  click::ClickLog log;
  core::EngineOptions options;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  Random rng(4);
  for (const auto& user : world_->users()) {
    engine.RegisterUser(user.id);
    const auto& intent = harness_->SampleQuery(user, rng);
    auto page = engine.Serve(user.id, intent.text);
    log.Add(world_->click_model().Simulate(user, intent, page.ShownPage(),
                                           world_->corpus(), 0, rng));
  }
  const auto parsed = click::ClickLog::FromTsv(log.ToTsv());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), log.size());
  for (int i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed->record(i).user, log.record(i).user);
    EXPECT_EQ(parsed->record(i).query_text, log.record(i).query_text);
    ASSERT_EQ(parsed->record(i).interactions.size(),
              log.record(i).interactions.size());
    for (size_t j = 0; j < log.record(i).interactions.size(); ++j) {
      EXPECT_EQ(parsed->record(i).interactions[j].clicked,
                log.record(i).interactions[j].clicked);
      EXPECT_EQ(parsed->record(i).interactions[j].doc,
                log.record(i).interactions[j].doc);
    }
  }
}

TEST_F(IntegrationTest, AllStrategiesRunWithoutCrashing) {
  eval::SimulationOptions sim;
  sim.train_days = 2;
  sim.queries_per_user_day = 2;
  sim.test_queries_per_user = 5;
  eval::SimulationHarness harness(world_, sim);
  for (ranking::Strategy strategy :
       {ranking::Strategy::kBaseline, ranking::Strategy::kContentOnly,
        ranking::Strategy::kLocationOnly, ranking::Strategy::kCombined,
        ranking::Strategy::kCombinedGps}) {
    core::EngineOptions options;
    options.strategy = strategy;
    const auto metrics = harness.Run(options);
    EXPECT_GT(metrics.impressions, 0)
        << ranking::StrategyToString(strategy);
  }
}

TEST_F(IntegrationTest, EntropyAdaptiveRunsAndStaysSane) {
  eval::SimulationOptions sim;
  sim.train_days = 4;
  sim.queries_per_user_day = 4;
  sim.test_queries_per_user = 10;
  eval::SimulationHarness harness(world_, sim);
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  options.entropy_adaptive_alpha = true;
  const auto metrics = harness.Run(options);
  EXPECT_GT(metrics.mrr, 0.3);
}

}  // namespace
}  // namespace pws
