#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "click/click_log.h"
#include "click/click_model.h"
#include "click/query_generator.h"
#include "click/relevance.h"
#include "click/sessions.h"
#include "click/simulated_user.h"
#include "geo/gazetteer.h"

namespace pws::click {
namespace {

class ClickWorld : public ::testing::Test {
 protected:
  ClickWorld()
      : rng_(11),
        topics_(corpus::TopicModel::Create(8, 10, rng_)),
        ontology_(geo::BuildWorldGazetteer()) {}

  Random rng_;
  corpus::TopicModel topics_;
  geo::LocationOntology ontology_;
};

// ---------- User population ----------

TEST_F(ClickWorld, PopulationShape) {
  UserPopulationOptions options;
  options.num_users = 30;
  const auto users = GenerateUserPopulation(topics_, ontology_, options, rng_);
  ASSERT_EQ(users.size(), 30u);
  for (const auto& user : users) {
    double total = 0.0;
    for (double a : user.topic_affinity) total += a;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(user.home_city, 0);
    EXPECT_EQ(ontology_.node(user.home_city).level, geo::LocationLevel::kCity);
    EXPECT_GE(user.locality_preference, 0.0);
    EXPECT_LE(user.locality_preference, 1.0);
  }
}

TEST_F(ClickWorld, FavouriteTopicsCarryMostMass) {
  UserPopulationOptions options;
  options.num_users = 10;
  options.favourite_topics = 2;
  options.favourite_mass = 0.9;
  const auto users = GenerateUserPopulation(topics_, ontology_, options, rng_);
  for (const auto& user : users) {
    std::vector<double> sorted = user.topic_affinity;
    std::sort(sorted.rbegin(), sorted.rend());
    EXPECT_NEAR(sorted[0] + sorted[1], 0.9, 1e-9);
  }
}

TEST_F(ClickWorld, SomeUsersHaveGpsAndTravel) {
  UserPopulationOptions options;
  options.num_users = 60;
  options.gps_fraction = 0.5;
  options.traveller_fraction = 0.5;
  const auto users = GenerateUserPopulation(topics_, ontology_, options, rng_);
  int with_gps = 0;
  int travellers = 0;
  for (const auto& user : users) {
    if (!user.gps_trace.empty()) ++with_gps;
    if (!user.place_affinity.empty()) ++travellers;
  }
  EXPECT_GT(with_gps, 15);
  EXPECT_LT(with_gps, 45);
  EXPECT_GT(travellers, 15);
  EXPECT_LT(travellers, 45);
}

TEST_F(ClickWorld, LocationAffinityPeaksAtHome) {
  UserPopulationOptions options;
  options.num_users = 5;
  const auto users = GenerateUserPopulation(topics_, ontology_, options, rng_);
  for (const auto& user : users) {
    EXPECT_DOUBLE_EQ(user.LocationAffinity(ontology_, user.home_city), 1.0);
    EXPECT_EQ(user.LocationAffinity(ontology_, geo::kInvalidLocation), 0.0);
  }
}

// ---------- Query pool ----------

TEST_F(ClickWorld, QueryPoolClassesBalanced) {
  QueryPoolOptions options;
  options.queries_per_class = 25;
  const auto pool = GenerateQueryPool(topics_, ontology_, options, rng_);
  ASSERT_EQ(pool.size(), 75u);
  int counts[3] = {0, 0, 0};
  for (const auto& q : pool) {
    ++counts[static_cast<int>(q.query_class)];
    EXPECT_FALSE(q.text.empty());
    EXPECT_GE(q.topic, 0);
    EXPECT_LT(q.topic, topics_.num_topics());
  }
  EXPECT_EQ(counts[0], 25);
  EXPECT_EQ(counts[1], 25);
  EXPECT_EQ(counts[2], 25);
}

TEST_F(ClickWorld, ExplicitQueriesNameTheirCity) {
  QueryPoolOptions options;
  options.queries_per_class = 40;
  options.explicit_location_fraction = 1.0;
  const auto pool = GenerateQueryPool(topics_, ontology_, options, rng_);
  for (const auto& q : pool) {
    if (q.query_class != QueryClass::kLocationHeavy) continue;
    ASSERT_NE(q.explicit_location, geo::kInvalidLocation);
    EXPECT_FALSE(q.implicit_local);
    EXPECT_NE(q.text.find(ontology_.node(q.explicit_location).name),
              std::string::npos);
  }
}

TEST_F(ClickWorld, ImplicitQueriesHaveNoCityInText) {
  QueryPoolOptions options;
  options.queries_per_class = 40;
  options.explicit_location_fraction = 0.0;
  const auto pool = GenerateQueryPool(topics_, ontology_, options, rng_);
  for (const auto& q : pool) {
    if (q.query_class != QueryClass::kLocationHeavy) continue;
    EXPECT_EQ(q.explicit_location, geo::kInvalidLocation);
    EXPECT_TRUE(q.implicit_local);
  }
}

TEST_F(ClickWorld, ClassIntentWeightsOrdered) {
  QueryPoolOptions options;
  const auto pool = GenerateQueryPool(topics_, ontology_, options, rng_);
  for (const auto& q : pool) {
    switch (q.query_class) {
      case QueryClass::kContentHeavy:
        EXPECT_LT(q.location_intent_weight, 0.3);
        break;
      case QueryClass::kLocationHeavy:
        EXPECT_GT(q.location_intent_weight, 0.5);
        break;
      case QueryClass::kMixed:
        EXPECT_GT(q.location_intent_weight, 0.2);
        EXPECT_LT(q.location_intent_weight, 0.5);
        break;
    }
  }
}

// ---------- Dwell grading ----------

TEST(GradeFromDwellTest, Thresholds) {
  DwellGradeThresholds t;
  EXPECT_EQ(GradeFromDwell(false, 1000, false, t),
            RelevanceGrade::kIrrelevant);
  EXPECT_EQ(GradeFromDwell(true, 10, false, t), RelevanceGrade::kIrrelevant);
  EXPECT_EQ(GradeFromDwell(true, 50, false, t), RelevanceGrade::kRelevant);
  EXPECT_EQ(GradeFromDwell(true, 399, false, t), RelevanceGrade::kRelevant);
  EXPECT_EQ(GradeFromDwell(true, 400, false, t),
            RelevanceGrade::kHighlyRelevant);
  // The session-ending click is highly relevant regardless of dwell.
  EXPECT_EQ(GradeFromDwell(true, 5, true, t),
            RelevanceGrade::kHighlyRelevant);
}

// ---------- Relevance model ----------

class RelevanceTest : public ClickWorld {
 protected:
  RelevanceTest() : model_(&ontology_, RelevanceModelOptions{}) {
    UserPopulationOptions options;
    options.num_users = 1;
    users_ = GenerateUserPopulation(topics_, ontology_, options, rng_);
  }

  corpus::Document MakeDoc(int topic, geo::LocationId location) {
    corpus::Document doc;
    doc.id = 0;
    doc.topic_mixture_truth.assign(topics_.num_topics(), 0.0);
    doc.topic_mixture_truth[topic] = 1.0;
    doc.primary_topic_truth = topic;
    doc.primary_location_truth = location;
    return doc;
  }

  QueryIntent MakeIntent(int topic, double loc_weight,
                         geo::LocationId explicit_loc, bool implicit) {
    QueryIntent intent;
    intent.topic = topic;
    intent.location_intent_weight = loc_weight;
    intent.explicit_location = explicit_loc;
    intent.implicit_local = implicit;
    return intent;
  }

  RelevanceModel model_;
  std::vector<SimulatedUser> users_;
};

TEST_F(RelevanceTest, TopicMatchRaisesRelevance) {
  const auto& user = users_[0];
  const auto intent = MakeIntent(2, 0.1, geo::kInvalidLocation, false);
  const auto on_topic = MakeDoc(2, geo::kInvalidLocation);
  const auto off_topic = MakeDoc(3, geo::kInvalidLocation);
  EXPECT_GT(model_.TrueRelevance(user, intent, on_topic),
            model_.TrueRelevance(user, intent, off_topic));
}

TEST_F(RelevanceTest, ExplicitLocationMatchRaisesRelevance) {
  const auto& user = users_[0];
  const auto tokyo = ontology_.Lookup("tokyo")[0];
  const auto osaka = ontology_.Lookup("osaka")[0];
  const auto berlin = ontology_.Lookup("berlin")[0];
  const auto intent = MakeIntent(1, 0.65, tokyo, false);
  const double at_tokyo =
      model_.TrueRelevance(user, intent, MakeDoc(1, tokyo));
  const double at_osaka =
      model_.TrueRelevance(user, intent, MakeDoc(1, osaka));
  const double at_berlin =
      model_.TrueRelevance(user, intent, MakeDoc(1, berlin));
  EXPECT_GT(at_tokyo, at_osaka);  // Same country beats...
  EXPECT_GT(at_osaka, at_berlin);  // ...a different country.
}

TEST_F(RelevanceTest, ImplicitLocalPrefersHome) {
  auto user = users_[0];
  user.home_city = ontology_.Lookup("munich")[0];
  user.locality_preference = 0.9;
  user.place_affinity.clear();
  const auto intent =
      MakeIntent(1, 0.65, geo::kInvalidLocation, /*implicit=*/true);
  const double at_home =
      model_.TrueRelevance(user, intent, MakeDoc(1, user.home_city));
  const double far_away = model_.TrueRelevance(
      user, intent, MakeDoc(1, ontology_.Lookup("sydney")[0]));
  EXPECT_GT(at_home, far_away + 0.2);
}

TEST_F(RelevanceTest, GradesMonotoneInRelevance) {
  const auto& user = users_[0];
  const auto tokyo = ontology_.Lookup("tokyo")[0];
  const auto intent = MakeIntent(1, 0.65, tokyo, false);
  const auto good = MakeDoc(1, tokyo);
  const auto bad = MakeDoc(3, ontology_.Lookup("berlin")[0]);
  EXPECT_GE(static_cast<int>(model_.TrueGrade(user, intent, good)),
            static_cast<int>(model_.TrueGrade(user, intent, bad)));
}

TEST_F(RelevanceTest, RelevanceBounded) {
  const auto& user = users_[0];
  for (int topic = 0; topic < 4; ++topic) {
    const auto intent = MakeIntent(topic, 0.65,
                                   ontology_.Lookup("tokyo")[0], false);
    for (geo::LocationId loc :
         {geo::kInvalidLocation, ontology_.Lookup("tokyo")[0]}) {
      const double rel = model_.TrueRelevance(user, intent, MakeDoc(topic, loc));
      EXPECT_GE(rel, 0.0);
      EXPECT_LE(rel, 1.0);
    }
  }
}

// ---------- Click model ----------

class ClickModelTest : public RelevanceTest {
 protected:
  ClickModelTest() : click_model_(&model_, ClickModelOptions{}) {
    for (int i = 0; i < 20; ++i) {
      corpus::Document doc = MakeDoc(i % 4, geo::kInvalidLocation);
      doc.id = i;
      corpus_.Add(doc);
      backend::SearchResult result;
      result.doc = i;
      result.rank = i;
      page_.results.push_back(result);
    }
    page_.query = "test";
  }

  CascadeClickModel click_model_;
  corpus::Corpus corpus_;
  backend::ResultPage page_;
};

TEST_F(ClickModelTest, RecordShapeMatchesPage) {
  const auto intent = MakeIntent(0, 0.1, geo::kInvalidLocation, false);
  Random rng(3);
  const ClickRecord record =
      click_model_.Simulate(users_[0], intent, page_, corpus_, 5, rng);
  EXPECT_EQ(record.user, users_[0].id);
  EXPECT_EQ(record.day, 5);
  ASSERT_EQ(record.interactions.size(), page_.results.size());
  for (size_t i = 0; i < record.interactions.size(); ++i) {
    EXPECT_EQ(record.interactions[i].rank, static_cast<int>(i));
    EXPECT_EQ(record.interactions[i].doc, page_.results[i].doc);
  }
}

TEST_F(ClickModelTest, ExactlyOneLastClickWhenClicked) {
  const auto intent = MakeIntent(0, 0.1, geo::kInvalidLocation, false);
  Random rng(5);
  int records_with_clicks = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const ClickRecord record =
        click_model_.Simulate(users_[0], intent, page_, corpus_, 0, rng);
    int last_clicks = 0;
    for (const auto& i : record.interactions) {
      if (i.last_click_in_session) ++last_clicks;
      if (i.clicked) EXPECT_GT(i.dwell_units, 0.0);
      if (!i.clicked) EXPECT_EQ(i.dwell_units, 0.0);
    }
    if (record.ClickCount() > 0) {
      ++records_with_clicks;
      EXPECT_EQ(last_clicks, 1);
    } else {
      EXPECT_EQ(last_clicks, 0);
    }
  }
  EXPECT_GT(records_with_clicks, 10);
}

TEST_F(ClickModelTest, PositionBiasLowersDeepClicks) {
  // Same relevance everywhere -> clicks must decay with rank.
  const auto intent = MakeIntent(0, 0.1, geo::kInvalidLocation, false);
  Random rng(7);
  int top_clicks = 0;
  int deep_clicks = 0;
  ClickModelOptions options;
  options.satisfaction_stop_scale = 0.0;  // Isolate examination decay.
  CascadeClickModel model(&model_, options);
  for (int trial = 0; trial < 800; ++trial) {
    const ClickRecord record =
        model.Simulate(users_[0], intent, page_, corpus_, 0, rng);
    for (const auto& i : record.interactions) {
      if (!i.clicked) continue;
      if (i.rank < 5) ++top_clicks;
      if (i.rank >= 15) ++deep_clicks;
    }
  }
  EXPECT_GT(top_clicks, deep_clicks);
}

TEST_F(ClickModelTest, HigherRelevanceMoreTopClicks) {
  Random rng(9);
  const auto relevant_intent = MakeIntent(0, 0.0, geo::kInvalidLocation, false);
  // Page doc 0 has topic 0 (matching) -> high relevance at rank 0.
  int clicks_relevant = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto record = click_model_.Simulate(users_[0], relevant_intent,
                                              page_, corpus_, 0, rng);
    if (record.interactions[0].clicked) ++clicks_relevant;
  }
  // Intent on topic 5: no doc matches -> rank-0 doc is off-topic.
  const auto irrelevant_intent =
      MakeIntent(5, 0.0, geo::kInvalidLocation, false);
  int clicks_irrelevant = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto record = click_model_.Simulate(users_[0], irrelevant_intent,
                                              page_, corpus_, 0, rng);
    if (record.interactions[0].clicked) ++clicks_irrelevant;
  }
  EXPECT_GT(clicks_relevant, clicks_irrelevant);
}

// ---------- Click log ----------

TEST(ClickLogTest, RecordHelpers) {
  ClickRecord record;
  record.interactions.resize(4);
  record.interactions[1].clicked = true;
  record.interactions[1].rank = 1;
  record.interactions[3].clicked = true;
  record.interactions[3].rank = 3;
  for (size_t i = 0; i < 4; ++i) {
    record.interactions[i].rank = static_cast<int>(i);
  }
  record.interactions[1].clicked = true;
  record.interactions[3].clicked = true;
  EXPECT_EQ(record.ClickCount(), 2);
  EXPECT_EQ(record.FirstClickRank(), 1);
}

TEST(ClickLogTest, EmptyRecordHelpers) {
  ClickRecord record;
  EXPECT_EQ(record.ClickCount(), 0);
  EXPECT_EQ(record.FirstClickRank(), -1);
}

TEST(ClickLogTest, TsvRoundTrip) {
  ClickLog log;
  ClickRecord a;
  a.user = 3;
  a.day = 2;
  a.query_id = 17;
  a.query_text = "hotel new york";
  Interaction i1{100, 0, true, 250.5, false};
  Interaction i2{101, 1, false, 0.0, false};
  Interaction i3{102, 2, true, 42.0, true};
  a.interactions = {i1, i2, i3};
  log.Add(a);
  ClickRecord b;
  b.user = 4;
  b.day = 2;
  b.query_id = 17;
  b.query_text = "hotel new york";
  b.interactions = {i2};
  log.Add(b);

  const auto parsed = ClickLog::FromTsv(log.ToTsv());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2);
  const auto& r0 = parsed->record(0);
  EXPECT_EQ(r0.user, 3);
  EXPECT_EQ(r0.query_text, "hotel new york");
  ASSERT_EQ(r0.interactions.size(), 3u);
  EXPECT_TRUE(r0.interactions[0].clicked);
  EXPECT_NEAR(r0.interactions[0].dwell_units, 250.5, 1e-9);
  EXPECT_TRUE(r0.interactions[2].last_click_in_session);
  EXPECT_EQ(parsed->record(1).user, 4);
}

TEST(ClickLogTest, FromTsvRejectsGarbage) {
  EXPECT_FALSE(ClickLog::FromTsv("not a log line").ok());
  EXPECT_FALSE(ClickLog::FromTsv("a\tb\tc\td\te\tf\tg\th\ti").ok());
}

TEST(ClickLogTest, FiltersByUserAndDay) {
  ClickLog log;
  for (int u = 0; u < 3; ++u) {
    for (int d = 0; d < 4; ++d) {
      ClickRecord r;
      r.user = u;
      r.day = d;
      r.query_id = u * 10 + d;
      log.Add(r);
    }
  }
  EXPECT_EQ(log.RecordsForUser(1).size(), 4u);
  EXPECT_EQ(log.RecordsBeforeDay(2).size(), 6u);
}


// ---------- Sessions ----------

ClickRecord RecordFor(UserId user, int day, const std::string& query,
                      int clicks) {
  ClickRecord record;
  record.user = user;
  record.day = day;
  record.query_text = query;
  for (int i = 0; i < 3; ++i) {
    Interaction interaction;
    interaction.doc = i;
    interaction.rank = i;
    interaction.clicked = i < clicks;
    interaction.dwell_units = i < clicks ? 100.0 : 0.0;
    record.interactions.push_back(interaction);
  }
  return record;
}

TEST(SessionsTest, SplitsOnGapPerUser) {
  ClickLog log;
  log.Add(RecordFor(1, 0, "a", 1));
  log.Add(RecordFor(1, 0, "b", 0));
  log.Add(RecordFor(1, 3, "c", 1));  // Gap of 3 days.
  log.Add(RecordFor(2, 1, "d", 2));
  SessionOptions options;
  options.max_gap_days = 1.0;
  const auto sessions = SegmentSessions(log, options);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0].user, 1);
  EXPECT_EQ(sessions[0].ImpressionCount(), 2);
  EXPECT_EQ(sessions[0].first_day, 0);
  EXPECT_EQ(sessions[0].last_day, 0);
  EXPECT_EQ(sessions[1].user, 1);
  EXPECT_EQ(sessions[1].first_day, 3);
  EXPECT_EQ(sessions[2].user, 2);
}

TEST(SessionsTest, AdjacentDaysMergeWithinGap) {
  ClickLog log;
  log.Add(RecordFor(0, 0, "a", 1));
  log.Add(RecordFor(0, 1, "a", 1));
  log.Add(RecordFor(0, 2, "a", 1));
  SessionOptions options;
  options.max_gap_days = 1.0;
  const auto sessions = SegmentSessions(log, options);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].ImpressionCount(), 3);
  EXPECT_EQ(sessions[0].last_day, 2);
}

TEST(SessionsTest, DefaultOptionsSplitPerActiveDay) {
  ClickLog log;
  log.Add(RecordFor(0, 0, "a", 1));
  log.Add(RecordFor(0, 1, "a", 1));
  const auto sessions = SegmentSessions(log, SessionOptions{});
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionsTest, EmptyLog) {
  EXPECT_TRUE(SegmentSessions(ClickLog{}, SessionOptions{}).empty());
  const auto stats = ComputeSessionStats(ClickLog{}, {});
  EXPECT_EQ(stats.sessions, 0);
}

TEST(SessionsTest, StatsAggregateCorrectly) {
  ClickLog log;
  log.Add(RecordFor(1, 0, "same", 2));
  log.Add(RecordFor(1, 0, "same", 1));
  log.Add(RecordFor(2, 0, "x", 0));
  log.Add(RecordFor(2, 0, "y", 1));
  const auto sessions = SegmentSessions(log, SessionOptions{});
  ASSERT_EQ(sessions.size(), 2u);
  const auto stats = ComputeSessionStats(log, sessions);
  EXPECT_EQ(stats.sessions, 2);
  EXPECT_DOUBLE_EQ(stats.mean_impressions_per_session, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_clicks_per_session, 2.0);
  EXPECT_DOUBLE_EQ(stats.single_query_fraction, 0.5);
}

}  // namespace
}  // namespace pws::click
