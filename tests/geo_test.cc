#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include <set>

#include "geo/gazetteer.h"
#include "geo/geo_point.h"
#include "geo/gps.h"
#include "geo/location_extractor.h"
#include "geo/location_ontology.h"

namespace pws::geo {
namespace {

// ---------- GeoPoint ----------

TEST(GeoPointTest, HaversineKnownDistances) {
  const GeoPoint london{51.51, -0.13};
  const GeoPoint paris{48.86, 2.35};
  const GeoPoint new_york{40.71, -74.01};
  EXPECT_NEAR(HaversineKm(london, paris), 344.0, 10.0);
  EXPECT_NEAR(HaversineKm(london, new_york), 5570.0, 60.0);
  EXPECT_DOUBLE_EQ(HaversineKm(london, london), 0.0);
}

TEST(GeoPointTest, HaversineSymmetric) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-30.0, 150.0};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(GeoPointTest, DistanceDecay) {
  EXPECT_DOUBLE_EQ(DistanceDecay(0.0, 100.0), 1.0);
  EXPECT_NEAR(DistanceDecay(100.0, 100.0), 1.0 / M_E, 1e-9);
  EXPECT_GT(DistanceDecay(10.0, 100.0), DistanceDecay(200.0, 100.0));
  EXPECT_DOUBLE_EQ(DistanceDecay(-5.0, 100.0), 1.0);  // Clamped.
}

// ---------- LocationOntology ----------

class OntologyTest : public ::testing::Test {
 protected:
  OntologyTest() {
    country_ = ontology_.AddNode("freedonia", LocationLevel::kCountry,
                                 ontology_.root(), {10, 10}, 0);
    region_ = ontology_.AddNode("north province", LocationLevel::kRegion,
                                country_, {11, 10}, 0);
    city_a_ = ontology_.AddNode("avalon", LocationLevel::kCity, region_,
                                {11.5, 10.2}, 500000);
    city_b_ = ontology_.AddNode("bridgeton", LocationLevel::kCity, region_,
                                {11.2, 10.8}, 100000);
    other_region_ = ontology_.AddNode("south province", LocationLevel::kRegion,
                                      country_, {9, 10}, 0);
    city_c_ = ontology_.AddNode("avalon", LocationLevel::kCity, other_region_,
                                {8.9, 10.1}, 20000);  // Ambiguous name.
  }

  LocationOntology ontology_;
  LocationId country_, region_, city_a_, city_b_, other_region_, city_c_;
};

TEST_F(OntologyTest, StructureAndDepth) {
  EXPECT_EQ(ontology_.size(), 7);
  EXPECT_EQ(ontology_.Depth(ontology_.root()), 0);
  EXPECT_EQ(ontology_.Depth(country_), 1);
  EXPECT_EQ(ontology_.Depth(region_), 2);
  EXPECT_EQ(ontology_.Depth(city_a_), 3);
}

TEST_F(OntologyTest, LookupFindsAllHomonyms) {
  const auto hits = ontology_.Lookup("avalon");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(ontology_.Lookup("Avalon").size(), 2u);  // Normalized.
  EXPECT_TRUE(ontology_.Lookup("atlantis").empty());
}

TEST_F(OntologyTest, MultiTokenNamesAffectMaxTokens) {
  EXPECT_GE(ontology_.max_name_tokens(), 2);
  EXPECT_EQ(ontology_.Lookup("north province").size(), 1u);
}

TEST_F(OntologyTest, Aliases) {
  ontology_.AddAlias(city_a_, "ava city");
  const auto hits = ontology_.Lookup("ava city");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], city_a_);
}

TEST_F(OntologyTest, AncestorQueries) {
  EXPECT_TRUE(ontology_.IsAncestorOf(country_, city_a_));
  EXPECT_TRUE(ontology_.IsAncestorOf(city_a_, city_a_));
  EXPECT_FALSE(ontology_.IsAncestorOf(city_a_, country_));
  EXPECT_FALSE(ontology_.IsAncestorOf(region_, city_c_));
}

TEST_F(OntologyTest, LowestCommonAncestor) {
  EXPECT_EQ(ontology_.LowestCommonAncestor(city_a_, city_b_), region_);
  EXPECT_EQ(ontology_.LowestCommonAncestor(city_a_, city_c_), country_);
  EXPECT_EQ(ontology_.LowestCommonAncestor(city_a_, city_a_), city_a_);
  EXPECT_EQ(ontology_.LowestCommonAncestor(city_a_, ontology_.root()),
            ontology_.root());
}

TEST_F(OntologyTest, WuPalmerSimilarity) {
  EXPECT_DOUBLE_EQ(ontology_.Similarity(city_a_, city_a_), 1.0);
  // Same region: LCA depth 2, both depth 3 -> 4/6.
  EXPECT_NEAR(ontology_.Similarity(city_a_, city_b_), 2.0 / 3.0, 1e-12);
  // Same country only: LCA depth 1 -> 2/6.
  EXPECT_NEAR(ontology_.Similarity(city_a_, city_c_), 1.0 / 3.0, 1e-12);
  // City vs own region: LCA = region (depth 2), depths 3+2 -> 4/5.
  EXPECT_NEAR(ontology_.Similarity(city_a_, region_), 0.8, 1e-12);
  // Symmetry.
  EXPECT_DOUBLE_EQ(ontology_.Similarity(city_a_, city_c_),
                   ontology_.Similarity(city_c_, city_a_));
}

TEST_F(OntologyTest, PathToRoot) {
  const auto path = ontology_.PathToRoot(city_a_);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], city_a_);
  EXPECT_EQ(path[1], region_);
  EXPECT_EQ(path[2], country_);
  EXPECT_EQ(path[3], ontology_.root());
}

TEST_F(OntologyTest, CitiesUnder) {
  EXPECT_EQ(ontology_.CitiesUnder(region_).size(), 2u);
  EXPECT_EQ(ontology_.CitiesUnder(country_).size(), 3u);
  EXPECT_EQ(ontology_.CitiesUnder(city_a_).size(), 1u);
}

TEST_F(OntologyTest, NearestCity) {
  EXPECT_EQ(ontology_.NearestCity({11.5, 10.2}), city_a_);
  EXPECT_EQ(ontology_.NearestCity({8.9, 10.0}), city_c_);
}

TEST_F(OntologyTest, NormalizeName) {
  EXPECT_EQ(LocationOntology::NormalizeName("  New-York  City "),
            "new york city");
}

// ---------- World gazetteer ----------

TEST(GazetteerTest, WorldHasExpectedShape) {
  const LocationOntology world = BuildWorldGazetteer();
  EXPECT_GT(world.size(), 120);
  EXPECT_GT(world.CitiesUnder(world.root()).size(), 80u);
  EXPECT_EQ(world.NodesAtLevel(LocationLevel::kCountry).size(), 14u);
}

TEST(GazetteerTest, AmbiguousNamesPresent) {
  const LocationOntology world = BuildWorldGazetteer();
  EXPECT_EQ(world.Lookup("portland").size(), 2u);
  EXPECT_EQ(world.Lookup("paris").size(), 2u);
  EXPECT_EQ(world.Lookup("cambridge").size(), 2u);
  EXPECT_EQ(world.Lookup("springfield").size(), 2u);
  EXPECT_EQ(world.Lookup("vancouver").size(), 2u);
  EXPECT_EQ(world.Lookup("london").size(), 2u);
}

TEST(GazetteerTest, AliasesResolve) {
  const LocationOntology world = BuildWorldGazetteer();
  const auto nyc = world.Lookup("nyc");
  ASSERT_EQ(nyc.size(), 1u);
  EXPECT_EQ(world.node(nyc[0]).name, "new york");
  const auto uk = world.Lookup("uk");
  ASSERT_EQ(uk.size(), 1u);
  EXPECT_EQ(world.node(uk[0]).name, "united kingdom");
}

TEST(GazetteerTest, CoordinatesRoughlySane) {
  const LocationOntology world = BuildWorldGazetteer();
  const auto tokyo = world.Lookup("tokyo");
  ASSERT_EQ(tokyo.size(), 1u);
  const auto sydney = world.Lookup("sydney");
  ASSERT_EQ(sydney.size(), 1u);
  const double km = HaversineKm(world.node(tokyo[0]).coords,
                                world.node(sydney[0]).coords);
  EXPECT_NEAR(km, 7800.0, 300.0);
}

struct SyntheticParam {
  int countries;
  int regions;
  int cities;
};

class SyntheticGazetteerTest
    : public ::testing::TestWithParam<SyntheticParam> {};

TEST_P(SyntheticGazetteerTest, ShapeMatchesParameters) {
  const auto p = GetParam();
  SyntheticGazetteerOptions options;
  options.num_countries = p.countries;
  options.regions_per_country = p.regions;
  options.cities_per_region = p.cities;
  Random rng(99);
  const LocationOntology g = BuildSyntheticGazetteer(options, rng);
  EXPECT_EQ(g.NodesAtLevel(LocationLevel::kCountry).size(),
            static_cast<size_t>(p.countries));
  EXPECT_EQ(g.NodesAtLevel(LocationLevel::kRegion).size(),
            static_cast<size_t>(p.countries * p.regions));
  EXPECT_EQ(g.CitiesUnder(g.root()).size(),
            static_cast<size_t>(p.countries * p.regions * p.cities));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticGazetteerTest,
                         ::testing::Values(SyntheticParam{1, 1, 1},
                                           SyntheticParam{3, 2, 5},
                                           SyntheticParam{10, 4, 8}));

TEST(SyntheticGazetteerTest, DeterministicGivenSeed) {
  SyntheticGazetteerOptions options;
  Random rng1(5);
  Random rng2(5);
  const auto a = BuildSyntheticGazetteer(options, rng1);
  const auto b = BuildSyntheticGazetteer(options, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (LocationId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.node(id).name, b.node(id).name);
  }
}

// ---------- LocationExtractor ----------

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest()
      : world_(BuildWorldGazetteer()),
        extractor_(&world_, LocationExtractorOptions{}) {}

  LocationId Only(const std::string& name) const {
    const auto ids = world_.Lookup(name);
    EXPECT_EQ(ids.size(), 1u) << name;
    return ids[0];
  }

  LocationOntology world_;
  LocationExtractor extractor_;
};

TEST_F(ExtractorTest, FindsSimpleMention) {
  const auto mentions = extractor_.Extract("best sushi in tokyo tonight");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].location, Only("tokyo"));
  EXPECT_EQ(mentions[0].surface, "tokyo");
  EXPECT_EQ(mentions[0].token_length, 1);
}

TEST_F(ExtractorTest, LongestMatchWinsForMultiTokenNames) {
  const auto mentions = extractor_.Extract("flights to new york city today");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(world_.node(mentions[0].location).name, "new york");
  EXPECT_EQ(mentions[0].surface, "new york city");
  EXPECT_EQ(mentions[0].token_length, 3);
}

TEST_F(ExtractorTest, PopulationPriorBreaksTies) {
  // Without context, the bigger Paris (France) wins over Paris, Texas.
  const auto mentions = extractor_.Extract("hotels in paris");
  ASSERT_EQ(mentions.size(), 1u);
  const auto& node = world_.node(mentions[0].location);
  EXPECT_EQ(world_.node(world_.node(node.parent).parent).name, "france");
}

TEST_F(ExtractorTest, ContextDisambiguates) {
  // Texas context flips Paris to Paris, Texas.
  const auto mentions =
      extractor_.Extract("driving from dallas and houston to paris");
  ASSERT_EQ(mentions.size(), 3u);
  const auto& paris = world_.node(mentions[2].location);
  EXPECT_EQ(world_.node(paris.parent).name, "texas");
}

TEST_F(ExtractorTest, SecondPassFixesEarlyMentions) {
  // "portland" appears before its context; the second pass should still
  // resolve it to Portland, Maine given the Bangor/Maine context after.
  const auto mentions = extractor_.Extract("portland and bangor in maine");
  ASSERT_EQ(mentions.size(), 3u);
  const auto& portland = world_.node(mentions[0].location);
  EXPECT_EQ(world_.node(portland.parent).name, "maine");
}

TEST_F(ExtractorTest, NoMentions) {
  EXPECT_TRUE(extractor_.Extract("purely topical text with no places").empty());
  EXPECT_TRUE(extractor_.Extract("").empty());
}

TEST_F(ExtractorTest, AliasesExtract) {
  const auto mentions = extractor_.Extract("cheap flights from nyc to la");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(world_.node(mentions[0].location).name, "new york");
  EXPECT_EQ(world_.node(mentions[1].location).name, "los angeles");
}

// ---------- GPS ----------

TEST(GpsTest, TraceAnchorsAtHome) {
  const LocationOntology world = BuildWorldGazetteer();
  const auto tokyo = world.Lookup("tokyo");
  ASSERT_FALSE(tokyo.empty());
  GpsTraceOptions options;
  options.num_days = 10;
  options.fixes_per_day = 6;
  Random rng(3);
  const GpsTrace trace = GenerateGpsTrace(world, tokyo[0], options, rng);
  ASSERT_EQ(trace.size(), 60u);
  // All fixes within the commute radius of Tokyo (plus slack).
  for (const auto& fix : trace) {
    EXPECT_LT(HaversineKm(fix.point, world.node(tokyo[0]).coords), 30.0);
  }
  // Timestamps increase.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time_days, trace[i - 1].time_days);
  }
}

TEST(GpsTest, TravelDaysVisitTravelCity) {
  const LocationOntology world = BuildWorldGazetteer();
  const auto tokyo = world.Lookup("tokyo");
  const auto osaka = world.Lookup("osaka");
  GpsTraceOptions options;
  options.num_days = 40;
  options.travel_city = osaka[0];
  options.travel_day_probability = 0.5;
  Random rng(4);
  const GpsTrace trace = GenerateGpsTrace(world, tokyo[0], options, rng);
  const auto counts = CityVisitCounts(world, trace);
  std::set<LocationId> visited;
  for (const auto& [city, count] : counts) visited.insert(city);
  EXPECT_TRUE(visited.count(tokyo[0]) > 0);
  EXPECT_TRUE(visited.count(osaka[0]) > 0);
}

TEST(GpsTest, CityVisitCountsSortedDescending) {
  const LocationOntology world = BuildWorldGazetteer();
  const auto tokyo = world.Lookup("tokyo");
  GpsTraceOptions options;
  options.num_days = 5;
  Random rng(5);
  const GpsTrace trace = GenerateGpsTrace(world, tokyo[0], options, rng);
  const auto counts = CityVisitCounts(world, trace);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i - 1].second, counts[i].second);
  }
}

TEST(GpsTest, EmptyTraceEmptyCounts) {
  const LocationOntology world = BuildWorldGazetteer();
  EXPECT_TRUE(CityVisitCounts(world, {}).empty());
}

}  // namespace
}  // namespace pws::geo
