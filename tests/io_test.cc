#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <deque>

#include "geo/gazetteer.h"
#include "corpus/corpus_generator.h"
#include "corpus/topic_model.h"
#include "io/corpus_io.h"
#include "io/engine_state_io.h"
#include "io/gazetteer_io.h"
#include "io/model_io.h"
#include "io/profile_io.h"
#include "util/file_util.h"
#include "util/random.h"

namespace pws::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------- File util ----------

TEST(FileUtilTest, WriteReadRoundTrip) {
  const std::string path = TempPath("file_util_rt.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  EXPECT_TRUE(FileExists(path));
  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFile) {
  const auto contents = ReadFileToString(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(FileExists(TempPath("does_not_exist.bin")));
}

TEST(FileUtilTest, BinarySafety) {
  const std::string path = TempPath("file_util_bin.bin");
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteStringToFile(path, binary).ok());
  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, binary);
  std::remove(path.c_str());
}

// ---------- Gazetteer IO ----------

TEST(GazetteerIoTest, WorldRoundTripsExactly) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const std::string tsv = GazetteerToTsv(world);
  const auto loaded = GazetteerFromTsv(tsv);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), world.size());
  for (geo::LocationId id = 0; id < world.size(); ++id) {
    const auto& a = world.node(id);
    const auto& b = loaded->node(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.children, b.children);
    EXPECT_NEAR(a.coords.lat, b.coords.lat, 1e-6);
    EXPECT_NEAR(a.coords.lon, b.coords.lon, 1e-6);
    EXPECT_NEAR(a.population, b.population, 0.1);
  }
  // Aliases survive.
  EXPECT_EQ(loaded->Lookup("nyc"), world.Lookup("nyc"));
  EXPECT_EQ(loaded->Lookup("portland"), world.Lookup("portland"));
}

TEST(GazetteerIoTest, FileRoundTrip) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const std::string path = TempPath("gazetteer.tsv");
  ASSERT_TRUE(SaveGazetteer(world, path).ok());
  const auto loaded = LoadGazetteer(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), world.size());
  std::remove(path.c_str());
}

TEST(GazetteerIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(GazetteerFromTsv("garbage line").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t5\t0\t1\t0\t0\t0\tjump-id").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t1\t9\t1\t0\t0\t0\tbad-parent").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t1\t0\t7\t0\t0\t0\tbad-level").ok());
  EXPECT_FALSE(GazetteerFromTsv("A\t99\talias-to-nowhere").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t1\t0\t1\tx\t0\t0\tbad-number").ok());
}

TEST(GazetteerIoTest, EmptyInputYieldsRootOnly) {
  const auto loaded = GazetteerFromTsv("");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1);  // Just the world root.
}

// ---------- Profile IO ----------

TEST(ProfileIoTest, RoundTripPreservesEverything) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(42, &world);
  profile.AddContentWeight("powder", 3.14159);
  profile.AddContentWeight("lift ticket", -0.5);
  profile.AddContentWeight("espresso", 1e-9);
  profile.AddLocationWeight(world.Lookup("whistler")[0], 7.25);
  profile.AddLocationWeight(world.Lookup("canada")[0], 0.33333333333);
  profile.RestoreImpressionCount(17);

  const std::string text = ProfileToText(profile);
  const auto loaded = ProfileFromText(text, &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->user(), 42);
  EXPECT_EQ(loaded->impressions_observed(), 17);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("powder"), 3.14159);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("lift ticket"), -0.5);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("espresso"), 1e-9);
  EXPECT_DOUBLE_EQ(loaded->LocationWeight(world.Lookup("whistler")[0]), 7.25);
  EXPECT_DOUBLE_EQ(loaded->LocationWeight(world.Lookup("canada")[0]),
                   0.33333333333);
}

TEST(ProfileIoTest, FileRoundTrip) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(7, &world);
  profile.AddContentWeight("booking", 2.0);
  const std::string path = TempPath("profile.txt");
  ASSERT_TRUE(SaveProfile(profile, path).ok());
  const auto loaded = LoadProfile(path, &world);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("booking"), 2.0);
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RejectsMalformedInput) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EXPECT_FALSE(ProfileFromText("", &world).ok());
  EXPECT_FALSE(ProfileFromText("C\t1.0\tterm", &world).ok());  // No header.
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nX\t1.0\tz", &world).ok());
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nL\t1.0\t99999", &world).ok());
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nC\tnot-a-number\tz", &world).ok());
  profile::UserProfile p(0, &world);
  EXPECT_FALSE(ProfileFromText(ProfileToText(p), nullptr).ok());
}

// ---------- Model IO ----------

TEST(ModelIoTest, TrainedModelRoundTrips) {
  Random rng(5);
  // TrainingPair holds raw pointers; rows_ owns the feature rows
  // (deque elements keep stable addresses while it grows).
  std::deque<std::array<double, 3>> rows;
  std::vector<ranking::TrainingPair> pairs;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({rng.UniformDouble(), rng.UniformDouble() + 0.4,
                    rng.UniformDouble()});
    ranking::TrainingPair pair;
    pair.preferred = rows.back().data();
    rows.push_back({rng.UniformDouble(), rng.UniformDouble(),
                    rng.UniformDouble()});
    pair.other = rows.back().data();
    pairs.push_back(pair);
  }
  ranking::RankSvm model(3);
  model.SetPrior({0.0, 1.0, 0.0});
  model.Train(pairs, ranking::RankSvmOptions{});

  const auto loaded = ModelFromText(ModelToText(model));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dimension(), 3);
  EXPECT_TRUE(loaded->is_trained());
  EXPECT_EQ(loaded->weights(), model.weights());
  EXPECT_EQ(loaded->prior(), model.prior());
}

TEST(ModelIoTest, FileRoundTrip) {
  ranking::RankSvm model(2);
  model.set_weights({1.5, -2.5});
  const std::string path = TempPath("model.txt");
  ASSERT_TRUE(SaveModel(model, path).ok());
  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->weights(), model.weights());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ModelFromText("").ok());
  EXPECT_FALSE(ModelFromText("M\t2\t1\nW\t1.0\nP\t0\t0\n").ok());  // Short W.
  EXPECT_FALSE(ModelFromText("M\tx\t1\nW\t1\t1\nP\t0\t0\n").ok());
  EXPECT_FALSE(ModelFromText("Q\t2\t1\nW\t1\t1\nP\t0\t0\n").ok());
}


// ---------- Engine state IO ----------

TEST(EngineStateIoTest, RoundTripsProfileAndModel) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(3, &world);
  profile.AddContentWeight("espresso", 2.5);
  profile.AddLocationWeight(world.Lookup("tokyo")[0], 1.25);
  ranking::RankSvm model(4);
  model.SetPrior({0.0, 1.0, 0.0, 0.0});
  model.set_weights({0.5, 1.5, -0.25, 0.0});

  const auto loaded =
      UserStateFromText(UserStateToText(profile, model), &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->profile.user(), 3);
  EXPECT_DOUBLE_EQ(loaded->profile.ContentWeight("espresso"), 2.5);
  EXPECT_EQ(loaded->model.weights(), model.weights());
  EXPECT_EQ(loaded->model.prior(), model.prior());
}

TEST(EngineStateIoTest, FileRoundTrip) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(1, &world);
  profile.AddContentWeight("x", 1.0);
  ranking::RankSvm model(2);
  model.set_weights({1.0, 2.0});
  const std::string path = TempPath("user_state.txt");
  ASSERT_TRUE(SaveUserState(profile, model, path).ok());
  const auto loaded = LoadUserState(path, &world);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->profile.ContentWeight("x"), 1.0);
  std::remove(path.c_str());
}

TEST(EngineStateIoTest, RejectsMissingSeparator) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EXPECT_FALSE(UserStateFromText("U\t1\t0\n", &world).ok());
}

TEST(EngineStateIoTest, ClickLogFileRoundTrip) {
  click::ClickLog log;
  click::ClickRecord record;
  record.user = 2;
  record.day = 1;
  record.query_id = 9;
  record.query_text = "ski whistler";
  click::Interaction interaction;
  interaction.doc = 55;
  interaction.rank = 0;
  interaction.clicked = true;
  interaction.dwell_units = 120.0;
  record.interactions.push_back(interaction);
  log.Add(record);
  const std::string path = TempPath("clicks.tsv");
  ASSERT_TRUE(SaveClickLog(log, path).ok());
  const auto loaded = LoadClickLog(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1);
  EXPECT_EQ(loaded->record(0).query_text, "ski whistler");
  std::remove(path.c_str());
}


// ---------- Corpus IO ----------

TEST(CorpusIoTest, GeneratedCorpusRoundTripsExactly) {
  Random rng(13);
  const corpus::TopicModel topics = corpus::TopicModel::Create(6, 10, rng);
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  corpus::CorpusGeneratorOptions options;
  options.num_documents = 80;
  corpus::CorpusGenerator generator(&topics, &world, options);
  const corpus::Corpus original = generator.Generate(rng);

  const auto loaded = CorpusFromText(CorpusToText(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (corpus::DocId id = 0; id < original.size(); ++id) {
    const auto& a = original.doc(id);
    const auto& b = loaded->doc(id);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.body, b.body);
    EXPECT_EQ(a.url, b.url);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.primary_topic_truth, b.primary_topic_truth);
    EXPECT_EQ(a.primary_location_truth, b.primary_location_truth);
    EXPECT_EQ(a.topic_mixture_truth, b.topic_mixture_truth);
    EXPECT_EQ(a.planted_locations_truth, b.planted_locations_truth);
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  corpus::Corpus corpus;
  corpus::Document doc;
  doc.id = 0;
  doc.title = "a title";
  doc.body = "a body with words";
  doc.url = "http://x.example/0";
  doc.domain = "x.example";
  doc.topic_mixture_truth = {0.5, 0.5};
  doc.primary_topic_truth = 0;
  corpus.Add(doc);
  const std::string path = TempPath("corpus.txt");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  const auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->doc(0).body, "a body with words");
  std::remove(path.c_str());
}

TEST(CorpusIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(CorpusFromText("garbage").ok());
  EXPECT_FALSE(CorpusFromText("D\t0\t0\t-1\turl").ok());     // Short D.
  EXPECT_FALSE(CorpusFromText("T\torphan title").ok());       // No D yet.
  EXPECT_FALSE(CorpusFromText("D\tx\t0\t-1\tu\td").ok());  // Bad id.
}

TEST(CorpusIoTest, EmptyCorpus) {
  const auto loaded = CorpusFromText("");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0);
}

}  // namespace
}  // namespace pws::io
