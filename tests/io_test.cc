#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <limits>
#include <mutex>
#include <set>
#include <thread>

#include "geo/gazetteer.h"
#include "corpus/corpus_generator.h"
#include "corpus/topic_model.h"
#include "io/corpus_io.h"
#include "io/engine_state_io.h"
#include "io/gazetteer_io.h"
#include "io/model_io.h"
#include "io/profile_io.h"
#include "io/wal.h"
#include "util/file_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace pws::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string WithCrlf(const std::string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  for (const char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

// ---------- File util ----------

TEST(FileUtilTest, WriteReadRoundTrip) {
  const std::string path = TempPath("file_util_rt.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  EXPECT_TRUE(FileExists(path));
  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFile) {
  const auto contents = ReadFileToString(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(FileExists(TempPath("does_not_exist.bin")));
}

TEST(FileUtilTest, BinarySafety) {
  const std::string path = TempPath("file_util_bin.bin");
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteStringToFile(path, binary).ok());
  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, binary);
  std::remove(path.c_str());
}

// ---------- Gazetteer IO ----------

TEST(GazetteerIoTest, WorldRoundTripsExactly) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const std::string tsv = GazetteerToTsv(world);
  const auto loaded = GazetteerFromTsv(tsv);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), world.size());
  for (geo::LocationId id = 0; id < world.size(); ++id) {
    const auto& a = world.node(id);
    const auto& b = loaded->node(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.children, b.children);
    EXPECT_NEAR(a.coords.lat, b.coords.lat, 1e-6);
    EXPECT_NEAR(a.coords.lon, b.coords.lon, 1e-6);
    EXPECT_NEAR(a.population, b.population, 0.1);
  }
  // Aliases survive.
  EXPECT_EQ(loaded->Lookup("nyc"), world.Lookup("nyc"));
  EXPECT_EQ(loaded->Lookup("portland"), world.Lookup("portland"));
}

TEST(GazetteerIoTest, FileRoundTrip) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const std::string path = TempPath("gazetteer.tsv");
  ASSERT_TRUE(SaveGazetteer(world, path).ok());
  const auto loaded = LoadGazetteer(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), world.size());
  std::remove(path.c_str());
}

TEST(GazetteerIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(GazetteerFromTsv("garbage line").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t5\t0\t1\t0\t0\t0\tjump-id").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t1\t9\t1\t0\t0\t0\tbad-parent").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t1\t0\t7\t0\t0\t0\tbad-level").ok());
  EXPECT_FALSE(GazetteerFromTsv("A\t99\talias-to-nowhere").ok());
  EXPECT_FALSE(GazetteerFromTsv("N\t1\t0\t1\tx\t0\t0\tbad-number").ok());
}

TEST(GazetteerIoTest, EmptyInputYieldsRootOnly) {
  const auto loaded = GazetteerFromTsv("");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1);  // Just the world root.
}

// ---------- Profile IO ----------

TEST(ProfileIoTest, RoundTripPreservesEverything) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(42, &world);
  profile.AddContentWeight("powder", 3.14159);
  profile.AddContentWeight("lift ticket", -0.5);
  profile.AddContentWeight("espresso", 1e-9);
  profile.AddLocationWeight(world.Lookup("whistler")[0], 7.25);
  profile.AddLocationWeight(world.Lookup("canada")[0], 0.33333333333);
  profile.RestoreImpressionCount(17);

  const std::string text = ProfileToText(profile);
  const auto loaded = ProfileFromText(text, &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->user(), 42);
  EXPECT_EQ(loaded->impressions_observed(), 17);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("powder"), 3.14159);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("lift ticket"), -0.5);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("espresso"), 1e-9);
  EXPECT_DOUBLE_EQ(loaded->LocationWeight(world.Lookup("whistler")[0]), 7.25);
  EXPECT_DOUBLE_EQ(loaded->LocationWeight(world.Lookup("canada")[0]),
                   0.33333333333);
}

TEST(ProfileIoTest, FileRoundTrip) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(7, &world);
  profile.AddContentWeight("booking", 2.0);
  const std::string path = TempPath("profile.txt");
  ASSERT_TRUE(SaveProfile(profile, path).ok());
  const auto loaded = LoadProfile(path, &world);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("booking"), 2.0);
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RejectsMalformedInput) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EXPECT_FALSE(ProfileFromText("", &world).ok());
  EXPECT_FALSE(ProfileFromText("C\t1.0\tterm", &world).ok());  // No header.
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nX\t1.0\tz", &world).ok());
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nL\t1.0\t99999", &world).ok());
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nC\tnot-a-number\tz", &world).ok());
  profile::UserProfile p(0, &world);
  EXPECT_FALSE(ProfileFromText(ProfileToText(p), nullptr).ok());
}

// ---------- Model IO ----------

TEST(ModelIoTest, TrainedModelRoundTrips) {
  Random rng(5);
  // TrainingPair holds raw pointers; rows_ owns the feature rows
  // (deque elements keep stable addresses while it grows).
  std::deque<std::array<double, 3>> rows;
  std::vector<ranking::TrainingPair> pairs;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({rng.UniformDouble(), rng.UniformDouble() + 0.4,
                    rng.UniformDouble()});
    ranking::TrainingPair pair;
    pair.preferred = rows.back().data();
    rows.push_back({rng.UniformDouble(), rng.UniformDouble(),
                    rng.UniformDouble()});
    pair.other = rows.back().data();
    pairs.push_back(pair);
  }
  ranking::RankSvm model(3);
  model.SetPrior({0.0, 1.0, 0.0});
  model.Train(pairs, ranking::RankSvmOptions{});

  const auto loaded = ModelFromText(ModelToText(model));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dimension(), 3);
  EXPECT_TRUE(loaded->is_trained());
  EXPECT_EQ(loaded->weights(), model.weights());
  EXPECT_EQ(loaded->prior(), model.prior());
}

TEST(ModelIoTest, FileRoundTrip) {
  ranking::RankSvm model(2);
  model.set_weights({1.5, -2.5});
  const std::string path = TempPath("model.txt");
  ASSERT_TRUE(SaveModel(model, path).ok());
  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->weights(), model.weights());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ModelFromText("").ok());
  EXPECT_FALSE(ModelFromText("M\t2\t1\nW\t1.0\nP\t0\t0\n").ok());  // Short W.
  EXPECT_FALSE(ModelFromText("M\tx\t1\nW\t1\t1\nP\t0\t0\n").ok());
  EXPECT_FALSE(ModelFromText("Q\t2\t1\nW\t1\t1\nP\t0\t0\n").ok());
}


// ---------- Engine state IO ----------

TEST(EngineStateIoTest, RoundTripsProfileAndModel) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(3, &world);
  profile.AddContentWeight("espresso", 2.5);
  profile.AddLocationWeight(world.Lookup("tokyo")[0], 1.25);
  ranking::RankSvm model(4);
  model.SetPrior({0.0, 1.0, 0.0, 0.0});
  model.set_weights({0.5, 1.5, -0.25, 0.0});

  const auto loaded =
      UserStateFromText(UserStateToText(profile, model), &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->profile.user(), 3);
  EXPECT_DOUBLE_EQ(loaded->profile.ContentWeight("espresso"), 2.5);
  EXPECT_EQ(loaded->model.weights(), model.weights());
  EXPECT_EQ(loaded->model.prior(), model.prior());
}

TEST(EngineStateIoTest, FileRoundTrip) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(1, &world);
  profile.AddContentWeight("x", 1.0);
  ranking::RankSvm model(2);
  model.set_weights({1.0, 2.0});
  const std::string path = TempPath("user_state.txt");
  ASSERT_TRUE(SaveUserState(profile, model, path).ok());
  const auto loaded = LoadUserState(path, &world);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->profile.ContentWeight("x"), 1.0);
  std::remove(path.c_str());
}

TEST(EngineStateIoTest, RejectsMissingSeparator) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EXPECT_FALSE(UserStateFromText("U\t1\t0\n", &world).ok());
}

TEST(EngineStateIoTest, ClickLogFileRoundTrip) {
  click::ClickLog log;
  click::ClickRecord record;
  record.user = 2;
  record.day = 1;
  record.query_id = 9;
  record.query_text = "ski whistler";
  click::Interaction interaction;
  interaction.doc = 55;
  interaction.rank = 0;
  interaction.clicked = true;
  interaction.dwell_units = 120.0;
  record.interactions.push_back(interaction);
  log.Add(record);
  const std::string path = TempPath("clicks.tsv");
  ASSERT_TRUE(SaveClickLog(log, path).ok());
  const auto loaded = LoadClickLog(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1);
  EXPECT_EQ(loaded->record(0).query_text, "ski whistler");
  std::remove(path.c_str());
}


// ---------- Corpus IO ----------

TEST(CorpusIoTest, GeneratedCorpusRoundTripsExactly) {
  Random rng(13);
  const corpus::TopicModel topics = corpus::TopicModel::Create(6, 10, rng);
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  corpus::CorpusGeneratorOptions options;
  options.num_documents = 80;
  corpus::CorpusGenerator generator(&topics, &world, options);
  const corpus::Corpus original = generator.Generate(rng);

  const auto loaded = CorpusFromText(CorpusToText(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (corpus::DocId id = 0; id < original.size(); ++id) {
    const auto& a = original.doc(id);
    const auto& b = loaded->doc(id);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.body, b.body);
    EXPECT_EQ(a.url, b.url);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.primary_topic_truth, b.primary_topic_truth);
    EXPECT_EQ(a.primary_location_truth, b.primary_location_truth);
    EXPECT_EQ(a.topic_mixture_truth, b.topic_mixture_truth);
    EXPECT_EQ(a.planted_locations_truth, b.planted_locations_truth);
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  corpus::Corpus corpus;
  corpus::Document doc;
  doc.id = 0;
  doc.title = "a title";
  doc.body = "a body with words";
  doc.url = "http://x.example/0";
  doc.domain = "x.example";
  doc.topic_mixture_truth = {0.5, 0.5};
  doc.primary_topic_truth = 0;
  corpus.Add(doc);
  const std::string path = TempPath("corpus.txt");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  const auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->doc(0).body, "a body with words");
  std::remove(path.c_str());
}

TEST(CorpusIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(CorpusFromText("garbage").ok());
  EXPECT_FALSE(CorpusFromText("D\t0\t0\t-1\turl").ok());     // Short D.
  EXPECT_FALSE(CorpusFromText("T\torphan title").ok());       // No D yet.
  EXPECT_FALSE(CorpusFromText("D\tx\t0\t-1\tu\td").ok());  // Bad id.
}

TEST(CorpusIoTest, EmptyCorpus) {
  const auto loaded = CorpusFromText("");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0);
}

// ---------- CRLF and non-finite robustness ----------

TEST(ProfileIoTest, ParsesCrlfAndTrailingBlankLines) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(4, &world);
  profile.AddContentWeight("powder", 1.5);
  profile.AddLocationWeight(world.Lookup("whistler")[0], 2.5);
  const auto loaded =
      ProfileFromText(WithCrlf(ProfileToText(profile)) + "\r\n\r\n", &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->user(), 4);
  EXPECT_DOUBLE_EQ(loaded->ContentWeight("powder"), 1.5);
  EXPECT_DOUBLE_EQ(loaded->LocationWeight(world.Lookup("whistler")[0]), 2.5);
}

TEST(ProfileIoTest, RejectsNonFiniteWeights) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nC\tnan\tz", &world).ok());
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nC\tinf\tz", &world).ok());
  EXPECT_FALSE(ProfileFromText("U\t1\t0\nL\t-inf\t0", &world).ok());
}

TEST(ModelIoTest, ParsesCrlfAndTrailingBlankLines) {
  ranking::RankSvm model(2);
  model.set_weights({1.5, -2.5});
  const auto loaded = ModelFromText(WithCrlf(ModelToText(model)) + "\r\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->weights(), model.weights());
}

TEST(ModelIoTest, RejectsNonFiniteWeights) {
  EXPECT_FALSE(ModelFromText("M\t2\t1\nW\tnan\t1\nP\t0\t0\n").ok());
  EXPECT_FALSE(ModelFromText("M\t2\t1\nW\t1\t1\nP\tinf\t0\n").ok());
}

TEST(GazetteerIoTest, ParsesCrlfInput) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const auto loaded = GazetteerFromTsv(WithCrlf(GazetteerToTsv(world)));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), world.size());
}

TEST(CorpusIoTest, ParsesCrlfInput) {
  corpus::Corpus corpus;
  corpus::Document doc;
  doc.id = 0;
  doc.title = "a title";
  doc.body = "a body";
  doc.url = "http://x.example/0";
  doc.domain = "x.example";
  doc.topic_mixture_truth = {1.0};
  doc.primary_topic_truth = 0;
  corpus.Add(doc);
  const auto loaded = CorpusFromText(WithCrlf(CorpusToText(corpus)));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1);
  EXPECT_EQ(loaded->doc(0).body, "a body");
}

TEST(EngineStateIoTest, ClickLogParsesCrlfInput) {
  const auto loaded =
      click::ClickLog::FromTsv("2\t0\t9\tski\t55\t0\t1\t120.00\t1\r\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1);
  EXPECT_EQ(loaded->record(0).query_text, "ski");
}

// ---------- Atomic writes under fault injection ----------

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FileFaultInjector::Global().Disarm(); }
};

TEST_F(FaultInjectionTest, AtomicWriteIsOldOrNewAtEveryCrashPoint) {
  const std::string path = TempPath("atomic_sweep.txt");
  // Learn how many write-path boundaries one full replacement crosses
  // (count-only mode: fail_at -1 never matches).
  FileFaultInjector::Global().Arm(-1, /*crash=*/false);
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  const int ops = FileFaultInjector::Global().ops_seen();
  ASSERT_GT(ops, 0);

  for (int fail_at = 0; fail_at < ops; ++fail_at) {
    for (const double partial : {0.0, 0.5}) {
      FileFaultInjector::Global().Disarm();
      ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
      FileFaultInjector::Global().Arm(fail_at, /*crash=*/true, partial);
      const Status status = WriteFileAtomic(path, "new contents");
      FileFaultInjector::Global().Disarm();
      EXPECT_FALSE(status.ok()) << "fail_at=" << fail_at;
      EXPECT_TRUE(status.code() == StatusCode::kInternal ||
                  status.code() == StatusCode::kDataLoss)
          << status;
      // The destination is the complete old file or the complete new
      // file — never empty, truncated, or a torn mix.
      const auto contents = ReadFileToString(path);
      ASSERT_TRUE(contents.ok()) << "fail_at=" << fail_at;
      EXPECT_TRUE(*contents == "old contents" || *contents == "new contents")
          << "fail_at=" << fail_at << " partial=" << partial
          << " left torn contents: " << *contents;
    }
  }
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, RenameAndSyncFailuresAreDataLoss) {
  const std::string path = TempPath("atomic_codes.txt");
  FileFaultInjector::Global().Arm(-1, /*crash=*/false);
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  const int ops = FileFaultInjector::Global().ops_seen();
  ASSERT_GT(ops, 1);
  // Boundary 0 is the data write — an error before any byte is durable.
  FileFaultInjector::Global().Arm(0, /*crash=*/false);
  EXPECT_EQ(WriteFileAtomic(path, "y").code(), StatusCode::kInternal);
  // Every later boundary (file fsync, rename, directory fsync) fails
  // after bytes hit the disk: kDataLoss, the satellite's distinct error.
  for (int fail_at = 1; fail_at < ops; ++fail_at) {
    FileFaultInjector::Global().Arm(fail_at, /*crash=*/false);
    EXPECT_EQ(WriteFileAtomic(path, "y").code(), StatusCode::kDataLoss)
        << "fail_at=" << fail_at;
  }
  FileFaultInjector::Global().Disarm();
  // A clean retry heals: the injector left no permanent wreckage.
  EXPECT_TRUE(WriteStringToFile(path, "y").ok());
  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "y");
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, FailedWriteLeavesNoTempFile) {
  const std::string path = TempPath("atomic_tmp.txt");
  FileFaultInjector::Global().Arm(0, /*crash=*/false);
  EXPECT_FALSE(WriteFileAtomic(path, "data").ok());
  FileFaultInjector::Global().Disarm();
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

// ---------- Write-ahead log ----------

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FileFaultInjector::Global().Disarm();
    std::remove(path_.c_str());
  }
  std::string NewPath(const std::string& name) {
    path_ = TempPath(name);
    std::remove(path_.c_str());
    return path_;
  }
  std::string path_;
};

TEST_F(WalTest, AppendReplayRoundTripsBinaryPayloads) {
  const std::string path = NewPath("wal_rt.log");
  const std::vector<std::string> payloads = {
      "C\nplain", std::string("\x00\x01\xff\n\t", 5), "", "last"};
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (const std::string& payload : payloads) {
      ASSERT_TRUE((*wal)->Append(payload).ok());
    }
    EXPECT_EQ((*wal)->last_seq(), payloads.size());
  }
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->dropped_bytes, 0u);
  ASSERT_EQ(replay->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replay->records[i].seq, i + 1);
    EXPECT_EQ(replay->records[i].payload, payloads[i]);
  }
}

TEST_F(WalTest, MissingFileReplaysEmpty) {
  const auto replay = WriteAheadLog::Replay(NewPath("wal_missing.log"));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->torn_tail);
}

TEST_F(WalTest, TornTailIsDroppedNotFatal) {
  const std::string path = NewPath("wal_torn.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first record").ok());
    ASSERT_TRUE((*wal)->Append("second record").ok());
    ASSERT_TRUE((*wal)->Append("third record").ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Chop into the third frame: a crash mid-append.
  ASSERT_TRUE(
      WriteStringToFile(path, contents->substr(0, contents->size() - 5))
          .ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_GT(replay->dropped_bytes, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].payload, "second record");
}

TEST_F(WalTest, CorruptMidFileFrameLosesOnlyThatRecord) {
  const std::string path = NewPath("wal_corrupt.log");
  const std::string first = "first record";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(first).ok());
    ASSERT_TRUE((*wal)->Append("second record").ok());
    ASSERT_TRUE((*wal)->Append("third record").ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Flip a payload byte inside the second frame (16-byte lineage header,
  // then per-frame 16-byte header + body).
  std::string corrupted = *contents;
  corrupted[16 + 16 + first.size() + 16 + 3] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  // Resync skips the corrupt frame and recovers the intact third one.
  EXPECT_FALSE(replay->torn_tail);  // The tail itself is clean.
  EXPECT_GT(replay->dropped_bytes, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, first);
  EXPECT_EQ(replay->records[1].seq, 3u);
  EXPECT_EQ(replay->records[1].payload, "third record");
}

TEST_F(WalTest, CorruptLengthFieldLosesOnlyThatRecord) {
  const std::string path = NewPath("wal_badlen.log");
  const std::string first = "first record";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(first).ok());
    ASSERT_TRUE((*wal)->Append("second record").ok());
    ASSERT_TRUE((*wal)->Append("third record").ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Flip a bit in the second frame's payload_len field (the second frame
  // starts after the 16-byte lineage header and the first frame). The
  // CRC covers the length, so the frame fails its checksum instead of
  // silently misframing — and resync still reaches the third record.
  std::string corrupted = *contents;
  corrupted[16 + 16 + first.size()] ^= 0x04;
  ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_GT(replay->dropped_bytes, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, first);
  EXPECT_EQ(replay->records[1].seq, 3u);
  EXPECT_EQ(replay->records[1].payload, "third record");
}

TEST_F(WalTest, OpenRepairsTornTailAndContinuesSequence) {
  const std::string path = NewPath("wal_repair.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("one").ok());
    ASSERT_TRUE((*wal)->Append("two").ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteStringToFile(path, *contents + "torn garbage").ok());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status();
    EXPECT_EQ((*wal)->last_seq(), 2u);
    // The repaired tail does not hide the new append from Replay.
    ASSERT_TRUE((*wal)->Append("three").ok());
  }
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[2].seq, 3u);
  EXPECT_EQ(replay->records[2].payload, "three");
}

TEST_F(WalTest, SequenceNumbersSurviveTruncate) {
  const std::string path = NewPath("wal_seq.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("one").ok());
  ASSERT_TRUE((*wal)->Append("two").ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  ASSERT_TRUE((*wal)->Append("three").ok());
  EXPECT_EQ((*wal)->last_seq(), 3u);
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  // Monotonic across the truncation — this is what lets a snapshot's
  // high-water mark tell already-applied records from new ones.
  EXPECT_EQ(replay->records[0].seq, 3u);
}

TEST_F(WalTest, EnsureSeqAtLeastKeepsSequenceAheadOfTruncatedHistory) {
  const std::string path = NewPath("wal_ensure.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("one").ok());
    ASSERT_TRUE((*wal)->Append("two").ok());
    // A snapshot recorded high-water mark 2 and truncated the log; the
    // process then exited cleanly.
    ASSERT_TRUE((*wal)->Truncate().ok());
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  // The file is empty, so Open alone knows nothing of seq 1..2 —
  // recovery must re-impose the snapshot's mark before appending.
  EXPECT_EQ((*wal)->last_seq(), 0u);
  (*wal)->EnsureSeqAtLeast(2);
  EXPECT_EQ((*wal)->last_seq(), 2u);
  (*wal)->EnsureSeqAtLeast(1);  // Never lowers.
  EXPECT_EQ((*wal)->last_seq(), 2u);
  ASSERT_TRUE((*wal)->Append("three").ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  // Above the snapshot mark — a recovery will replay, not skip, it.
  EXPECT_EQ(replay->records[0].seq, 3u);
}

TEST_F(WalTest, CreatingNewLogSyncsItsDirectoryEntry) {
  const std::string path = NewPath("wal_dirsync.log");
  // Creating a fresh, empty log crosses exactly three hooked boundaries:
  // the parent-directory fsync that makes the new file itself durable,
  // then the write + fsync of the lineage header.
  FileFaultInjector::Global().Arm(-1, /*crash=*/false);  // Count only.
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status();
  }
  EXPECT_EQ(FileFaultInjector::Global().ops_seen(), 3);
  // Reopening an existing log crosses none.
  FileFaultInjector::Global().Arm(-1, /*crash=*/false);
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status();
  }
  EXPECT_EQ(FileFaultInjector::Global().ops_seen(), 0);
  FileFaultInjector::Global().Disarm();

  // A failed directory sync fails the creation loudly.
  std::remove(path.c_str());
  FileFaultInjector::Global().Arm(0, /*crash=*/false);
  EXPECT_FALSE(WriteAheadLog::Open(path).ok());
  FileFaultInjector::Global().Disarm();
}

TEST_F(WalTest, FailedAppendRollsBackAndDoesNotAdvanceSequence) {
  const std::string path = NewPath("wal_fail.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("good one").ok());
  // A short write tears the second frame mid-payload...
  FileFaultInjector::Global().Arm(0, /*crash=*/false,
                                  /*partial_write_fraction=*/0.5);
  EXPECT_FALSE((*wal)->Append("torn two").ok());
  FileFaultInjector::Global().Disarm();
  EXPECT_EQ((*wal)->last_seq(), 1u);
  // ...but the log rolled back, so the next append is not hidden behind
  // the torn frame and the sequence has no gap.
  ASSERT_TRUE((*wal)->Append("good two").ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, "good one");
  EXPECT_EQ(replay->records[1].seq, 2u);
  EXPECT_EQ(replay->records[1].payload, "good two");
}

// ---------- Group commit ----------

TEST_F(WalTest, GroupCommitConcurrentAppendsAllDurableAndReplayClean) {
  const std::string path = NewPath("wal_group.log");
  WriteAheadLog::Options options;
  options.group_commit = true;
  options.group_max_batch = 8;
  options.group_wait_us = 100;
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();

  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 50;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &failed, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        std::string payload = "t";
        payload += std::to_string(t);
        payload += '#';
        payload += std::to_string(i);
        if (!(*wal)->Append(payload).ok()) failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  // Every acked append is one intact frame; sequence numbers are a
  // gap-free 1..N despite the leader/follower handoff.
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  constexpr size_t kTotal =
      static_cast<size_t>(kThreads) * kAppendsPerThread;
  ASSERT_EQ(replay->records.size(), kTotal);
  std::set<std::string> payloads;
  for (size_t i = 0; i < replay->records.size(); ++i) {
    EXPECT_EQ(replay->records[i].seq, i + 1);
    payloads.insert(replay->records[i].payload);
  }
  EXPECT_EQ(payloads.size(), kTotal);  // No payload lost or duplicated.
}

TEST_F(WalTest, GroupCommitAckedRecordsSurviveCrashAtMostTailLost) {
  // The group-commit durability contract: an Append that returned OK
  // survives any crash; what a crash can lose is only frames whose
  // Append had not yet acked. Emulate the crash with the injector's
  // crash mode (every disk op fails from the chosen point on), then
  // "restart" by replaying the file a fresh process would find.
  const std::string path = NewPath("wal_group_crash.log");
  WriteAheadLog::Options options;
  options.group_commit = true;
  options.group_wait_us = 0;  // Deterministic: each append syncs itself.
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE((*wal)->Append("acked one").ok());
  ASSERT_TRUE((*wal)->Append("acked two").ok());

  // Crash at the very next boundary: the third append's frame may be
  // torn mid-write; its Append reports failure — it was never acked.
  FileFaultInjector::Global().Arm(0, /*crash=*/true,
                                  /*partial_write_fraction=*/0.5);
  EXPECT_FALSE((*wal)->Append("never acked").ok());
  FileFaultInjector::Global().Disarm();

  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, "acked one");
  EXPECT_EQ(replay->records[1].payload, "acked two");

  // The repaired log accepts new appends after "restart", and the
  // acked prefix still replays ahead of them.
  auto reopened = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_TRUE((*reopened)->Append("post restart").ok());
  const auto after = WriteAheadLog::Replay(path);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->torn_tail);
  ASSERT_EQ(after->records.size(), 3u);
  EXPECT_EQ(after->records[2].payload, "post restart");
}

TEST_F(WalTest, GroupCommitFailedSyncFailsEveryWaiterInTheBatch) {
  // A failed shared fsync rolls the file back to the last durable
  // point; every append whose frame the sync covered must report the
  // failure (none of them may ack un-durable data).
  const std::string path = NewPath("wal_group_sync_fail.log");
  WriteAheadLog::Options options;
  options.group_commit = true;
  options.group_max_batch = 16;
  options.group_wait_us = 5000;  // Wide window so appends batch together.
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE((*wal)->Append("durable base").ok());

  // Every disk op fails from here on: whether an append dies at its own
  // frame write or at the batch's shared fsync, it must come back
  // non-OK — no waiter may ack un-durable data.
  FileFaultInjector::Global().Arm(0, /*crash=*/true);
  constexpr int kThreads = 4;
  std::atomic<int> acked{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &acked, t] {
      if ((*wal)->Append("batched " + std::to_string(t)).ok()) ++acked;
    });
  }
  for (auto& th : threads) th.join();
  FileFaultInjector::Global().Disarm();
  EXPECT_EQ(acked.load(), 0);

  // The rollback left only the durable prefix visible to replay.
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, "durable base");
}

TEST_F(WalTest, GroupCommitFailedSyncVerdictIsStickyAndLogStaysUsable) {
  // A failed shared fsync destroys its frame for good: the destroyed
  // record must never be acked by (or reappear under) a later
  // successful sync, its sequence number is never reused, and the log
  // keeps accepting appends afterwards.
  const std::string path = NewPath("wal_group_sticky_fail.log");
  WriteAheadLog::Options options;
  options.group_commit = true;
  options.group_wait_us = 0;  // Deterministic: each append syncs itself.
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE((*wal)->Append("acked one").ok());

  // Ops after Arm: the frame write (0) succeeds, the group fsync (1)
  // fails — the append's frame is truncated away and it must not ack.
  FileFaultInjector::Global().Arm(1, /*crash=*/false);
  EXPECT_FALSE((*wal)->Append("destroyed two").ok());
  FileFaultInjector::Global().Disarm();

  // The log recovers: the next append acks, on a fresh sequence number
  // (the destroyed frame's number is burned, leaving a gap replay
  // tolerates), and the destroyed record stays gone.
  ASSERT_TRUE((*wal)->Append("acked three").ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, "acked one");
  EXPECT_EQ(replay->records[0].seq, 1u);
  EXPECT_EQ(replay->records[1].payload, "acked three");
  EXPECT_EQ(replay->records[1].seq, 3u);
}

TEST_F(WalTest, GroupCommitFailsFramesWrittenWhileAFailingSyncWasInFlight) {
  // A frame written while a (slow, ultimately failing) shared fsync is
  // in flight is beyond the sync's target but still destroyed by the
  // failure rollback — its append must report the loss rather than
  // ride a later successful sync past the hole.
  const std::string path = NewPath("wal_group_inflight_fail.log");
  WriteAheadLog::Options options;
  options.group_commit = true;
  options.group_wait_us = 0;  // The leader syncs without lingering.
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE((*wal)->Append("durable base").ok());

  // Ops after Arm: the leader's frame write (0) succeeds; its group
  // fsync (1) stalls 100ms and then fails. The stall is the window in
  // which the second append writes its frame.
  FileFaultInjector::Global().Arm(1, /*crash=*/false,
                                  /*partial_write_fraction=*/0.0,
                                  /*fail_delay_us=*/100000);
  std::atomic<bool> leader_failed{false};
  std::thread leader([&wal, &leader_failed] {
    leader_failed = !(*wal)->Append("doomed leader").ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const Status in_flight = (*wal)->Append("doomed in-flight");
  leader.join();
  FileFaultInjector::Global().Disarm();
  EXPECT_TRUE(leader_failed.load());

  // The log keeps working afterwards, and the contract holds for every
  // append: acked ⇒ present in replay. Under the intended schedule the
  // in-flight frame was truncated away, so its append must have failed;
  // if the schedule slipped and it landed after the rollback, it acked
  // and must be on disk.
  ASSERT_TRUE((*wal)->Append("acked after").ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  std::set<std::string> on_disk;
  for (const auto& record : replay->records) on_disk.insert(record.payload);
  EXPECT_EQ(on_disk.count("durable base"), 1u);
  EXPECT_EQ(on_disk.count("acked after"), 1u);
  EXPECT_EQ(on_disk.count("doomed leader"), 0u);
  EXPECT_TRUE(!in_flight.ok() || on_disk.count("doomed in-flight") > 0)
      << "acked a frame the failure rollback destroyed";
}

TEST_F(WalTest, GroupCommitNeverAcksAFrameTheFailureRollbackDestroyed) {
  // Sweep a single injected failure across the op sequence of a burst
  // of concurrent group-commit appends. Whatever the failing op hits —
  // a frame write or a shared fsync — an append that returned OK must
  // have its record survive replay. This covers the subtle case of
  // frames written *while* a failing sync was in flight: the rollback
  // truncates them away, so their appends must report the failure
  // rather than ride a later successful sync.
  WriteAheadLog::Options options;
  options.group_commit = true;
  options.group_max_batch = 4;
  options.group_wait_us = 200;
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 6;
  for (int fail_at = 0; fail_at < 12; ++fail_at) {
    const std::string path =
        NewPath("wal_group_sweep_" + std::to_string(fail_at) + ".log");
    auto wal = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(wal.ok()) << wal.status();
    std::mutex acked_mutex;
    std::vector<std::string> acked;
    FileFaultInjector::Global().Arm(fail_at, /*crash=*/false);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, &acked_mutex, &acked, t] {
        for (int i = 0; i < kAppendsPerThread; ++i) {
          std::string payload = "t";
          payload += std::to_string(t);
          payload += '#';
          payload += std::to_string(i);
          if ((*wal)->Append(payload).ok()) {
            std::lock_guard<std::mutex> lock(acked_mutex);
            acked.push_back(payload);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    FileFaultInjector::Global().Disarm();
    const auto replay = WriteAheadLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << "fail_at=" << fail_at;
    std::set<std::string> on_disk;
    for (const auto& record : replay->records) on_disk.insert(record.payload);
    for (const std::string& payload : acked) {
      EXPECT_TRUE(on_disk.count(payload) > 0)
          << "acked but lost at fail_at=" << fail_at << ": " << payload;
    }
  }
}

// ---------- Shared sequencer across shard logs ----------

TEST_F(WalTest, SharedSequencerMergesShardLogsIntoTotalOrder) {
  const std::string path_a = NewPath("wal_shard_a.log");
  const std::string path_b = path_a + ".s1";
  std::atomic<uint64_t> sequencer{0};
  WriteAheadLog::Options options;
  options.sequencer = &sequencer;
  auto wal_a = WriteAheadLog::Open(path_a, options);
  auto wal_b = WriteAheadLog::Open(path_b, options);
  ASSERT_TRUE(wal_a.ok());
  ASSERT_TRUE(wal_b.ok());

  // Interleave appends across the two files the way sharded Observe
  // traffic does.
  ASSERT_TRUE((*wal_a)->Append("a1").ok());
  ASSERT_TRUE((*wal_b)->Append("b1").ok());
  ASSERT_TRUE((*wal_b)->Append("b2").ok());
  ASSERT_TRUE((*wal_a)->Append("a2").ok());
  ASSERT_TRUE((*wal_b)->Append("b3").ok());
  EXPECT_EQ(sequencer.load(), 5u);

  // Each file's seqs are a strictly increasing subsequence; the union
  // is the gap-free total order 1..5 a merge replay sorts into.
  std::vector<std::pair<uint64_t, std::string>> merged;
  for (const std::string& path : {path_a, path_b}) {
    const auto replay = WriteAheadLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << path;
    uint64_t prev = 0;
    for (const auto& record : replay->records) {
      EXPECT_GT(record.seq, prev) << path;
      prev = record.seq;
      merged.emplace_back(record.seq, record.payload);
    }
  }
  std::sort(merged.begin(), merged.end());
  ASSERT_EQ(merged.size(), 5u);
  const std::vector<std::string> expected = {"a1", "b1", "b2", "a2", "b3"};
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].first, i + 1);
    EXPECT_EQ(merged[i].second, expected[i]);
  }
  std::remove(path_b.c_str());
}

TEST_F(WalTest, OpenRaisesSharedSequencerPastExistingFrames) {
  // Reopening shard files after a restart must push the shared counter
  // past every frame already on disk, whichever file holds the max —
  // otherwise post-restart appends would reuse claimed numbers.
  const std::string path_a = NewPath("wal_seqraise_a.log");
  const std::string path_b = path_a + ".s1";
  {
    std::atomic<uint64_t> sequencer{0};
    WriteAheadLog::Options options;
    options.sequencer = &sequencer;
    auto wal_a = WriteAheadLog::Open(path_a, options);
    auto wal_b = WriteAheadLog::Open(path_b, options);
    ASSERT_TRUE(wal_a.ok());
    ASSERT_TRUE(wal_b.ok());
    ASSERT_TRUE((*wal_a)->Append("a1").ok());
    ASSERT_TRUE((*wal_b)->Append("b1").ok());
    ASSERT_TRUE((*wal_b)->Append("b2").ok());
  }
  std::atomic<uint64_t> fresh{0};
  WriteAheadLog::Options options;
  options.sequencer = &fresh;
  auto wal_a = WriteAheadLog::Open(path_a, options);
  ASSERT_TRUE(wal_a.ok());
  EXPECT_EQ(fresh.load(), 1u);  // Raised to file A's max.
  auto wal_b = WriteAheadLog::Open(path_b, options);
  ASSERT_TRUE(wal_b.ok());
  EXPECT_EQ(fresh.load(), 3u);  // Raised again to file B's max.
  ASSERT_TRUE((*wal_a)->Append("a2").ok());
  const auto replay = WriteAheadLog::Replay(path_a);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].seq, 4u);  // Not a reused 2.
  std::remove(path_b.c_str());
}

TEST_F(WalTest, RolledBackSharedSeqIsReusedNotLeftAsPermanentGap) {
  // With a shared sequencer a failed append gives its number back (best
  // effort): the immediately following append on the same quiet log
  // reuses it instead of burning one per failure.
  const std::string path = NewPath("wal_shared_rollback.log");
  std::atomic<uint64_t> sequencer{0};
  WriteAheadLog::Options options;
  options.sequencer = &sequencer;
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("one").ok());
  FileFaultInjector::Global().Arm(0, /*crash=*/false,
                                  /*partial_write_fraction=*/0.5);
  EXPECT_FALSE((*wal)->Append("torn").ok());
  FileFaultInjector::Global().Disarm();
  EXPECT_EQ(sequencer.load(), 1u);  // Seq 2 was handed back.
  ASSERT_TRUE((*wal)->Append("two").ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].seq, 2u);
  EXPECT_EQ(replay->records[1].payload, "two");
}

// ---------- Durable envelope ----------

TEST(DurableEnvelopeTest, RoundTrips) {
  const std::string payload = "line one\nline two\n\x01\x02";
  const std::string wrapped = WrapDurable("PWSTEST", 3, payload);
  const auto unwrapped = UnwrapDurable("PWSTEST", 3, wrapped);
  ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
  EXPECT_EQ(*unwrapped, payload);
}

TEST(DurableEnvelopeTest, TruncationIsDataLoss) {
  const std::string wrapped = WrapDurable("PWSTEST", 1, "some payload here");
  const auto unwrapped =
      UnwrapDurable("PWSTEST", 1, wrapped.substr(0, wrapped.size() - 4));
  EXPECT_EQ(unwrapped.status().code(), StatusCode::kDataLoss);
}

TEST(DurableEnvelopeTest, BitFlipIsDataLoss) {
  std::string wrapped = WrapDurable("PWSTEST", 1, "some payload here");
  wrapped[wrapped.size() - 3] ^= 0x10;
  const auto unwrapped = UnwrapDurable("PWSTEST", 1, wrapped);
  EXPECT_EQ(unwrapped.status().code(), StatusCode::kDataLoss);
}

TEST(DurableEnvelopeTest, ForeignOrMalformedHeaderIsInvalidArgument) {
  const std::string wrapped = WrapDurable("PWSTEST", 1, "payload");
  EXPECT_EQ(UnwrapDurable("OTHER", 1, wrapped).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(UnwrapDurable("PWSTEST", 2, wrapped).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(UnwrapDurable("PWSTEST", 1, "no newline header").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(UnwrapDurable("PWSTEST", 1, "a\tb\n").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------- Whole-engine snapshots ----------

EngineState MakeSnapshotFixture(const geo::LocationOntology& world) {
  EngineState state;
  state.last_wal_seq = 77;

  profile::UserProfile profile_a(1, &world);
  profile_a.AddContentWeight("espresso", 2.5);
  profile_a.AddLocationWeight(world.Lookup("tokyo")[0], 1.25);
  ranking::RankSvm model_a(3);
  model_a.SetPrior({0.0, 1.0, 0.0});
  model_a.set_weights({0.5, 1.5, -0.25});
  PersistedUserState user_a(std::move(profile_a), std::move(model_a));
  user_a.user = 1;
  user_a.position = geo::GeoPoint{35.6812, 139.7671};
  user_a.pair_queries = {"ramen tokyo", "hotel with\ttab",
                         "multi\nline \\query\r\n"};
  PersistedPair pair;
  pair.query_index = 1;
  pair.preferred_backend_index = 4;
  pair.other_backend_index = 0;
  pair.weight = 0.75;
  user_a.pairs.push_back(pair);
  state.users.push_back(std::move(user_a));

  profile::UserProfile profile_b(6, &world);
  ranking::RankSvm model_b(3);
  PersistedUserState user_b(std::move(profile_b), std::move(model_b));
  user_b.user = 6;
  state.users.push_back(std::move(user_b));
  return state;
}

TEST(EngineStateIoTest, EngineSnapshotRoundTripsExactly) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const EngineState state = MakeSnapshotFixture(world);
  const auto loaded = EngineStateFromText(EngineStateToText(state), &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_wal_seq, 77u);
  ASSERT_EQ(loaded->users.size(), 2u);

  const PersistedUserState& a = loaded->users[0];
  EXPECT_EQ(a.user, 1);
  EXPECT_EQ(a.profile.user(), 1);
  EXPECT_EQ(a.profile.ContentWeight("espresso"), 2.5);
  EXPECT_EQ(a.profile.LocationWeight(world.Lookup("tokyo")[0]), 1.25);
  EXPECT_EQ(a.model.weights(), state.users[0].model.weights());
  EXPECT_EQ(a.model.prior(), state.users[0].model.prior());
  ASSERT_TRUE(a.position.has_value());
  EXPECT_EQ(a.position->lat, 35.6812);  // %a round trip is exact.
  EXPECT_EQ(a.position->lon, 139.7671);
  EXPECT_EQ(a.pair_queries, state.users[0].pair_queries);
  ASSERT_EQ(a.pairs.size(), 1u);
  EXPECT_EQ(a.pairs[0].query_index, 1);
  EXPECT_EQ(a.pairs[0].preferred_backend_index, 4);
  EXPECT_EQ(a.pairs[0].other_backend_index, 0);
  EXPECT_EQ(a.pairs[0].weight, 0.75);

  const PersistedUserState& b = loaded->users[1];
  EXPECT_EQ(b.user, 6);
  EXPECT_FALSE(b.position.has_value());
  EXPECT_TRUE(b.pair_queries.empty());
  EXPECT_TRUE(b.pairs.empty());
}

TEST(EngineStateIoTest, EmptyEngineSnapshotRoundTrips) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EngineState state;
  state.last_wal_seq = 9;
  const auto loaded = EngineStateFromText(EngineStateToText(state), &world);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_wal_seq, 9u);
  EXPECT_TRUE(loaded->users.empty());
}

TEST(EngineStateIoTest, TruncatedEngineSnapshotIsDataLoss) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const std::string text = EngineStateToText(MakeSnapshotFixture(world));
  const auto loaded =
      EngineStateFromText(text.substr(0, text.size() - 10), &world);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(EngineStateIoTest, CorruptedEngineSnapshotIsDataLoss) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  std::string text = EngineStateToText(MakeSnapshotFixture(world));
  text[text.size() - 10] ^= 0x20;
  EXPECT_EQ(EngineStateFromText(text, &world).status().code(),
            StatusCode::kDataLoss);
}

TEST(EngineStateIoTest, RejectsOutOfRangePairIndices) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EngineState state = MakeSnapshotFixture(world);
  state.users[0].pairs[0].query_index = 7;  // Only 3 pair queries exist.
  const auto loaded = EngineStateFromText(EngineStateToText(state), &world);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineStateIoTest, RejectsNonFinitePairWeight) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  EngineState state = MakeSnapshotFixture(world);
  state.users[0].pairs[0].weight =
      std::numeric_limits<double>::quiet_NaN();
  const auto loaded = EngineStateFromText(EngineStateToText(state), &world);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineStateIoTest, EngineSnapshotFileRoundTripSurvivesCrashSweep) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const EngineState state = MakeSnapshotFixture(world);
  const std::string path = TempPath("engine_snapshot.pws");
  // Baseline save, then re-save under every injected crash point: the
  // file must load as a complete snapshot (old or new) every time.
  FileFaultInjector::Global().Arm(-1, /*crash=*/false);
  ASSERT_TRUE(SaveEngineState(state, path).ok());
  const int ops = FileFaultInjector::Global().ops_seen();
  for (int fail_at = 0; fail_at < ops; ++fail_at) {
    FileFaultInjector::Global().Arm(fail_at, /*crash=*/true,
                                    /*partial_write_fraction=*/0.3);
    const Status ignored = SaveEngineState(state, path);
    (void)ignored;
    FileFaultInjector::Global().Disarm();
    const auto loaded = LoadEngineState(path, &world);
    ASSERT_TRUE(loaded.ok())
        << "crash at op " << fail_at << ": " << loaded.status();
    EXPECT_EQ(loaded->users.size(), 2u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pws::io
