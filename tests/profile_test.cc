#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "concepts/concept_interner.h"
#include "geo/gazetteer.h"
#include "profile/entropy.h"
#include "profile/gps_augment.h"
#include "profile/preference_pairs.h"
#include "profile/user_profile.h"

namespace pws::profile {
namespace {

// ---------- Preference pair mining ----------

click::ClickRecord MakeRecord(const std::vector<bool>& clicked) {
  click::ClickRecord record;
  for (size_t i = 0; i < clicked.size(); ++i) {
    click::Interaction interaction;
    interaction.doc = static_cast<corpus::DocId>(i);
    interaction.rank = static_cast<int>(i);
    interaction.clicked = clicked[i];
    interaction.dwell_units = clicked[i] ? 200.0 : 0.0;
    record.interactions.push_back(interaction);
  }
  return record;
}

TEST(PreferencePairsTest, SkipAboveOnlyPairsWithSkippedAbove) {
  // Click at rank 2: pairs against unclicked ranks 0 and 1 only.
  const auto record = MakeRecord({false, false, true, false, false});
  const auto pairs = MinePreferencePairs(record, PairMiningOptions{});
  ASSERT_EQ(pairs.size(), 2u);
  for (const auto& pair : pairs) {
    EXPECT_EQ(pair.preferred_index, 2);
    EXPECT_LT(pair.other_index, 2);
  }
}

TEST(PreferencePairsTest, ClickVsAllPairsWithEveryUnclicked) {
  const auto record = MakeRecord({false, false, true, false, false});
  PairMiningOptions options;
  options.strategy = PairMiningStrategy::kClickVsAll;
  const auto pairs = MinePreferencePairs(record, options);
  EXPECT_EQ(pairs.size(), 4u);
}

TEST(PreferencePairsTest, MultipleClicks) {
  const auto record = MakeRecord({false, true, false, true});
  const auto pairs = MinePreferencePairs(record, PairMiningOptions{});
  // Click@1 vs skip@0; click@3 vs skips@0,2.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(PreferencePairsTest, NoClicksNoPairs) {
  const auto record = MakeRecord({false, false, false});
  EXPECT_TRUE(MinePreferencePairs(record, PairMiningOptions{}).empty());
}

TEST(PreferencePairsTest, GradeWeighting) {
  auto record = MakeRecord({false, true});
  record.interactions[1].dwell_units = 500.0;  // Highly relevant.
  PairMiningOptions options;
  auto pairs = MinePreferencePairs(record, options);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].weight, 2.0);

  record.interactions[1].dwell_units = 10.0;  // Bounce click.
  pairs = MinePreferencePairs(record, options);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].weight, 0.25);

  options.grade_weighting = false;
  pairs = MinePreferencePairs(record, options);
  EXPECT_DOUBLE_EQ(pairs[0].weight, 1.0);
}

// ---------- UserProfile ----------

class ProfileTest : public ::testing::Test {
 protected:
  ProfileTest() : ontology_(geo::BuildWorldGazetteer()), profile_(7, &ontology_) {}

  geo::LocationId Only(const std::string& name) const {
    const auto ids = ontology_.Lookup(name);
    EXPECT_EQ(ids.size(), 1u);
    return ids[0];
  }

  // Builds a 3-result impression; result 0 clicked (dwell 200), results
  // 1..2 not clicked.
  click::ClickRecord ThreeResultRecord() {
    auto record = MakeRecord({true, false, false});
    record.interactions[0].last_click_in_session = true;
    return record;
  }

  geo::LocationOntology ontology_;
  UserProfile profile_;
};

TEST_F(ProfileTest, ClickRaisesContentWeight) {
  ImpressionConcepts impression;
  impression.AppendResultTerms({"powder"});
  impression.AppendResultTerms({"lift"});
  impression.AppendResultTerms({"lift"});
  impression.locations_per_result = {{}, {}, {}};
  profile_.ObserveImpression(ThreeResultRecord(), impression, nullptr,
                             ProfileUpdateOptions{});
  EXPECT_GT(profile_.ContentWeight("powder"), 0.0);
  EXPECT_EQ(profile_.ContentWeight("lift"), 0.0);  // Unexamined tail.
  EXPECT_EQ(profile_.impressions_observed(), 1);
}

TEST_F(ProfileTest, SkippedAboveClickGetPenalized) {
  auto record = MakeRecord({false, true, false});
  ImpressionConcepts impression;
  impression.AppendResultTerms({"skipped"});
  impression.AppendResultTerms({"clicked"});
  impression.AppendResultTerms({"tail"});
  impression.locations_per_result = {{}, {}, {}};
  profile_.ObserveImpression(record, impression, nullptr,
                             ProfileUpdateOptions{});
  EXPECT_LT(profile_.ContentWeight("skipped"), 0.0);
  EXPECT_GT(profile_.ContentWeight("clicked"), 0.0);
  EXPECT_EQ(profile_.ContentWeight("tail"), 0.0);
}

TEST_F(ProfileTest, LiftDividesByPageFrequency) {
  // "common" is on all three results; "rare" only on the clicked one.
  auto record = MakeRecord({true, false, false});
  ImpressionConcepts impression;
  impression.AppendResultTerms({"common", "rare"});
  impression.AppendResultTerms({"common"});
  impression.AppendResultTerms({"common"});
  impression.locations_per_result = {{}, {}, {}};
  profile_.ObserveImpression(record, impression, nullptr,
                             ProfileUpdateOptions{});
  EXPECT_GT(profile_.ContentWeight("rare"),
            profile_.ContentWeight("common") * 2.0);
}

TEST_F(ProfileTest, LocationClickCreditsCityAndAncestors) {
  auto record = ThreeResultRecord();
  ImpressionConcepts impression;
  for (int i = 0; i < 3; ++i) impression.AppendResultTerms({});
  // Every result located -> density 1 -> gate fully open.
  impression.locations_per_result = {
      {Only("whistler")}, {Only("berlin")}, {Only("munich")}};
  profile_.ObserveImpression(record, impression, nullptr,
                             ProfileUpdateOptions{});
  const double city = profile_.LocationWeight(Only("whistler"));
  const double region = profile_.LocationWeight(Only("british columbia"));
  const double country = profile_.LocationWeight(Only("canada"));
  EXPECT_GT(city, 0.0);
  EXPECT_GT(region, 0.0);
  EXPECT_GT(country, 0.0);
  EXPECT_GT(city, region);
  EXPECT_GT(region, country);
}

TEST_F(ProfileTest, QueryExplainedLocationsGetNoCredit) {
  auto record = ThreeResultRecord();
  ImpressionConcepts impression;
  for (int i = 0; i < 3; ++i) impression.AppendResultTerms({});
  impression.locations_per_result = {
      {Only("whistler")}, {Only("berlin")}, {Only("munich")}};
  impression.query_mentioned_locations = {Only("whistler")};
  profile_.ObserveImpression(record, impression, nullptr,
                             ProfileUpdateOptions{});
  EXPECT_EQ(profile_.LocationWeight(Only("whistler")), 0.0);
  EXPECT_EQ(profile_.LocationWeight(Only("british columbia")), 0.0);
}

TEST_F(ProfileTest, LowLocationDensityPagesGiveNoLocationCredit) {
  auto record = ThreeResultRecord();
  ImpressionConcepts impression;
  for (int i = 0; i < 3; ++i) impression.AppendResultTerms({});
  // Only 1/3 of results located -> below the 0.25..0.55 gate? 0.33 is
  // inside the ramp but low; use 0 located on others -> density 1/3.
  impression.locations_per_result = {{Only("tokyo")}, {}, {}};
  profile_.ObserveImpression(record, impression, nullptr,
                             ProfileUpdateOptions{});
  const double w = profile_.LocationWeight(Only("tokyo"));
  // Partially gated: much less than a full-density credit (grade 2 ->
  // 2.0 raw).
  EXPECT_LT(w, 0.5);
}

TEST_F(ProfileTest, OntologySpreadingPropagatesToNeighbours) {
  std::vector<concepts::ContentConcept> concepts = {
      {"ski", 0.6, 3}, {"powder", 0.6, 3}, {"unrelated", 0.4, 2}};
  concepts::SnippetIncidence incidence = {{0, 1}, {0, 1}, {0, 1}, {2}};
  concepts::ContentOntology content_ontology(concepts, incidence);

  auto record = ThreeResultRecord();
  ImpressionConcepts impression;
  impression.AppendResultTerms({"ski"});
  impression.AppendResultTerms({});
  impression.AppendResultTerms({});
  impression.locations_per_result = {{}, {}, {}};
  ProfileUpdateOptions options;
  profile_.ObserveImpression(record, impression, &content_ontology, options);
  EXPECT_GT(profile_.ContentWeight("ski"), 0.0);
  EXPECT_GT(profile_.ContentWeight("powder"), 0.0);  // Spread.
  EXPECT_EQ(profile_.ContentWeight("unrelated"), 0.0);
  EXPECT_GT(profile_.ContentWeight("ski"), profile_.ContentWeight("powder"));

  // Spreading off: no neighbour credit.
  UserProfile no_spread(8, &ontology_);
  options.ontology_spreading = false;
  no_spread.ObserveImpression(record, impression, &content_ontology, options);
  EXPECT_EQ(no_spread.ContentWeight("powder"), 0.0);
}

TEST_F(ProfileTest, DecayShrinksWeights) {
  profile_.AddContentWeight("ski", 10.0);
  profile_.AddLocationWeight(Only("tokyo"), 10.0);
  ProfileUpdateOptions options;
  options.daily_decay = 0.5;
  profile_.DecayDaily(options);
  EXPECT_DOUBLE_EQ(profile_.ContentWeight("ski"), 5.0);
  EXPECT_DOUBLE_EQ(profile_.LocationWeight(Only("tokyo")), 5.0);
}

TEST_F(ProfileTest, LocationAffinityGeneralizesViaOntology) {
  profile_.AddLocationWeight(Only("whistler"), 4.0);
  // Exact match: weight * 1.
  EXPECT_DOUBLE_EQ(profile_.LocationAffinity(Only("whistler")), 4.0);
  // Same region (Victoria BC): weight * (2*2/6).
  EXPECT_NEAR(profile_.LocationAffinity(Only("victoria")), 4.0 * 2 / 3,
              1e-9);
  // Different continent: similarity 0.
  EXPECT_DOUBLE_EQ(profile_.LocationAffinity(Only("tokyo")), 0.0);
  EXPECT_DOUBLE_EQ(profile_.LocationAffinity(geo::kInvalidLocation), 0.0);
}

TEST_F(ProfileTest, MaxWeightsAndCountsAndTops) {
  profile_.AddContentWeight("a", 3.0);
  profile_.AddContentWeight("b", 5.0);
  profile_.AddContentWeight("c", -1.0);
  EXPECT_DOUBLE_EQ(profile_.MaxContentWeight(), 5.0);
  EXPECT_EQ(profile_.ContentConceptCount(), 3);
  const auto top = profile_.TopContentConcepts(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "b");
  EXPECT_EQ(top[1].first, "a");

  EXPECT_DOUBLE_EQ(profile_.MaxLocationWeight(), 0.0);
  profile_.AddLocationWeight(Only("tokyo"), 2.0);
  EXPECT_DOUBLE_EQ(profile_.MaxLocationWeight(), 2.0);
  EXPECT_EQ(profile_.LocationConceptCount(), 1);
}

// ---------- Entropy tracker ----------

std::vector<concepts::ConceptId> Ids(const std::vector<std::string>& terms) {
  std::vector<concepts::ConceptId> ids;
  for (const auto& term : terms) {
    ids.push_back(concepts::ConceptInterner::Global().Intern(term));
  }
  return ids;
}

TEST(EntropyTrackerTest, ConcentratedClicksLowEntropy) {
  ClickEntropyTracker tracker;
  const std::vector<geo::LocationId> location = {42};
  for (int i = 0; i < 10; ++i) {
    tracker.AddClick(1, Ids({"ski"}), location);
  }
  EXPECT_EQ(tracker.ClickCount(1), 10);
  EXPECT_DOUBLE_EQ(tracker.ContentEntropy(1), 0.0);
  EXPECT_DOUBLE_EQ(tracker.LocationEntropy(1), 0.0);
}

TEST(EntropyTrackerTest, DiverseClicksHighEntropy) {
  ClickEntropyTracker tracker;
  for (int i = 0; i < 8; ++i) {
    const std::vector<geo::LocationId> location = {
        static_cast<geo::LocationId>(i)};
    tracker.AddClick(2, Ids({"term" + std::to_string(i)}), location);
  }
  EXPECT_NEAR(tracker.LocationEntropy(2), std::log(8.0), 1e-9);
  EXPECT_NEAR(tracker.ContentEntropy(2), std::log(8.0), 1e-9);
}

TEST(EntropyTrackerTest, UnknownQueryDefaults) {
  ClickEntropyTracker tracker;
  EXPECT_EQ(tracker.ClickCount(99), 0);
  EXPECT_DOUBLE_EQ(tracker.ContentEntropy(99), 0.0);
  EXPECT_DOUBLE_EQ(tracker.LocationEntropy(99), 0.0);
}

TEST(EntropyTrackerTest, AdaptiveBlendRampsWithLocationEntropy) {
  ClickEntropyTracker tracker;
  // Query 1: all clicks on one location -> min alpha.
  const std::vector<geo::LocationId> fixed = {5};
  for (int i = 0; i < 10; ++i) tracker.AddClick(1, {}, fixed);
  // Query 2: clicks spread over many locations -> max alpha.
  for (int i = 0; i < 10; ++i) {
    const std::vector<geo::LocationId> location = {
        static_cast<geo::LocationId>(i)};
    tracker.AddClick(2, {}, location);
  }
  const double low = tracker.AdaptiveLocationBlend(1, 0.1, 0.8);
  const double high = tracker.AdaptiveLocationBlend(2, 0.1, 0.8);
  EXPECT_NEAR(low, 0.1, 1e-9);
  EXPECT_NEAR(high, 0.8, 1e-9);
  // Unknown query: middle of the range.
  EXPECT_NEAR(tracker.AdaptiveLocationBlend(77, 0.1, 0.8), 0.45, 1e-9);
}

// ---------- GPS augmentation ----------

TEST(GpsAugmentTest, VisitedCitiesGainWeight) {
  const geo::LocationOntology ontology = geo::BuildWorldGazetteer();
  const geo::LocationId tokyo = ontology.Lookup("tokyo")[0];
  UserProfile profile(1, &ontology);
  geo::GpsTraceOptions trace_options;
  trace_options.num_days = 10;
  Random rng(3);
  const geo::GpsTrace trace =
      GenerateGpsTrace(ontology, tokyo, trace_options, rng);
  AugmentProfileWithGps(ontology, trace, GpsAugmentOptions{}, &profile);
  EXPECT_GT(profile.LocationWeight(tokyo), 0.0);
  // Ancestors credited with damping.
  const geo::LocationId kanto = ontology.node(tokyo).parent;
  EXPECT_GT(profile.LocationWeight(kanto), 0.0);
  EXPECT_LT(profile.LocationWeight(kanto), profile.LocationWeight(tokyo));
}

TEST(GpsAugmentTest, MinVisitsFiltersNoise) {
  const geo::LocationOntology ontology = geo::BuildWorldGazetteer();
  const geo::LocationId tokyo = ontology.Lookup("tokyo")[0];
  UserProfile profile(1, &ontology);
  geo::GpsTrace trace;
  trace.push_back({0.0, ontology.node(tokyo).coords});  // Single fix.
  GpsAugmentOptions options;
  options.min_visits = 2;
  AugmentProfileWithGps(ontology, trace, options, &profile);
  EXPECT_EQ(profile.LocationWeight(tokyo), 0.0);
}

}  // namespace
}  // namespace pws::profile
