#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/pws_engine.h"
#include "eval/world.h"

namespace pws::core {
namespace {

// A small world shared by all engine tests (built once; ~1 s).
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 9;
    config.num_topics = 8;
    config.corpus.num_documents = 3000;
    config.users.num_users = 6;
    config.users.gps_fraction = 1.0;
    config.queries.queries_per_class = 10;
    config.backend.page_size = 20;
    world_ = new eval::World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static EngineOptions DefaultOptions() {
    EngineOptions options;
    options.strategy = ranking::Strategy::kCombined;
    return options;
  }

  static eval::World* world_;
};

eval::World* EngineTest::world_ = nullptr;

TEST_F(EngineTest, RegisterUserIsIdempotent) {
  PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                   DefaultOptions());
  engine.RegisterUser(0);
  engine.RegisterUser(0);
  EXPECT_EQ(engine.registered_user_count(), 1);
  EXPECT_EQ(engine.training_pair_count(0), 0);
}

TEST_F(EngineTest, ServeReturnsConsistentPage) {
  PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                   DefaultOptions());
  engine.RegisterUser(0);
  const auto page = engine.Serve(0, "hotel booking");
  EXPECT_FALSE(page.backend_page().results.empty());
  EXPECT_EQ(page.order.size(), page.backend_page().results.size());
  EXPECT_EQ(static_cast<size_t>(page.features.rows()),
            page.backend_page().results.size());
  EXPECT_EQ(static_cast<size_t>(page.impression().result_count()),
            page.backend_page().results.size());
  // Order is a permutation.
  std::vector<int> sorted = page.order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int>(i));
  }
  // ShownPage rewrites ranks.
  const auto shown = page.ShownPage();
  for (size_t j = 0; j < shown.results.size(); ++j) {
    EXPECT_EQ(shown.results[j].rank, static_cast<int>(j));
    EXPECT_EQ(shown.results[j].doc,
              page.backend_page().results[page.order[j]].doc);
  }
}

TEST_F(EngineTest, ServeIsDeterministic) {
  PwsEngine a(&world_->search_backend(), &world_->ontology(),
              DefaultOptions());
  PwsEngine b(&world_->search_backend(), &world_->ontology(),
              DefaultOptions());
  a.RegisterUser(0);
  b.RegisterUser(0);
  const auto pa = a.Serve(0, "restaurant menu");
  const auto pb = b.Serve(0, "restaurant menu");
  EXPECT_EQ(pa.order, pb.order);
  EXPECT_EQ(pa.features, pb.features);
}

TEST_F(EngineTest, UntrainedWithQueryLocationPriorPromotesQueryCity) {
  // Serve an explicit-location query with an untrained (prior-only)
  // model: results matching the named city should not be ranked worse
  // than the backend put them.
  PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                   DefaultOptions());
  engine.RegisterUser(0);
  const auto page = engine.Serve(0, "hotel rooms tokyo");
  // Compute mean shown position of results whose feature says they match
  // the query location strongly.
  double match_pos = 0.0;
  double other_pos = 0.0;
  int match_n = 0;
  int other_n = 0;
  for (size_t j = 0; j < page.order.size(); ++j) {
    const int backend_index = page.order[j];
    if (page.features.row(backend_index)[ranking::kQueryLocationMatchIndex] >
        0.9) {
      match_pos += static_cast<double>(j);
      ++match_n;
    } else {
      other_pos += static_cast<double>(j);
      ++other_n;
    }
  }
  if (match_n > 0 && other_n > 0) {
    EXPECT_LT(match_pos / match_n, other_pos / other_n);
  }
}

TEST_F(EngineTest, ObserveAccumulatesPairsAndUpdatesProfile) {
  PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                   DefaultOptions());
  const auto& user = world_->users()[0];
  engine.RegisterUser(user.id);
  Random rng(5);
  const auto& intent = world_->queries()[0];
  int total_pairs = 0;
  for (int i = 0; i < 10; ++i) {
    auto page = engine.Serve(user.id, intent.text);
    const auto record = world_->click_model().Simulate(
        user, intent, page.ShownPage(), world_->corpus(), i, rng);
    engine.Observe(user.id, page, record);
    total_pairs = engine.training_pair_count(user.id);
  }
  EXPECT_GT(total_pairs, 0);
  EXPECT_GT(engine.user_profile(user.id).impressions_observed(), 0);
  const double loss = engine.TrainUser(user.id);
  EXPECT_GE(loss, 0.0);
}

TEST_F(EngineTest, TrainingChangesModelWeights) {
  PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                   DefaultOptions());
  const auto& user = world_->users()[1];
  engine.RegisterUser(user.id);
  const auto before = engine.user_model(user.id).weights();
  Random rng(6);
  for (int i = 0; i < 12; ++i) {
    const auto& intent =
        world_->queries()[rng.UniformUint64(world_->queries().size())];
    auto page = engine.Serve(user.id, intent.text);
    const auto record = world_->click_model().Simulate(
        user, intent, page.ShownPage(), world_->corpus(), i, rng);
    engine.Observe(user.id, page, record);
  }
  engine.TrainAllUsers();
  EXPECT_NE(engine.user_model(user.id).weights(), before);
}

TEST_F(EngineTest, GpsAttachSeedsLocationProfile) {
  EngineOptions options = DefaultOptions();
  options.strategy = ranking::Strategy::kCombinedGps;
  PwsEngine engine(&world_->search_backend(), &world_->ontology(), options);
  const auto& user = world_->users()[0];
  ASSERT_FALSE(user.gps_trace.empty());
  engine.RegisterUser(user.id);
  EXPECT_EQ(engine.user_profile(user.id).LocationConceptCount(), 0);
  engine.AttachGpsTrace(user.id, user.gps_trace);
  EXPECT_GT(engine.user_profile(user.id).LocationConceptCount(), 0);
  EXPECT_GT(engine.user_profile(user.id).LocationWeight(user.home_city), 0.0);
}

TEST_F(EngineTest, EntropyAdaptiveAlphaStaysInRange) {
  EngineOptions options = DefaultOptions();
  options.entropy_adaptive_alpha = true;
  options.min_alpha = 0.2;
  options.max_alpha = 0.7;
  PwsEngine engine(&world_->search_backend(), &world_->ontology(), options);
  const auto& user = world_->users()[2];
  engine.RegisterUser(user.id);
  Random rng(8);
  for (int i = 0; i < 8; ++i) {
    const auto& intent =
        world_->queries()[rng.UniformUint64(world_->queries().size())];
    auto page = engine.Serve(user.id, intent.text);
    EXPECT_GE(page.alpha_used, 0.2);
    EXPECT_LE(page.alpha_used, 0.7);
    const auto record = world_->click_model().Simulate(
        user, intent, page.ShownPage(), world_->corpus(), i, rng);
    engine.Observe(user.id, page, record);
  }
}

TEST_F(EngineTest, BaselineStrategyNeverReorders) {
  EngineOptions options = DefaultOptions();
  options.strategy = ranking::Strategy::kBaseline;
  PwsEngine engine(&world_->search_backend(), &world_->ontology(), options);
  const auto& user = world_->users()[3];
  engine.RegisterUser(user.id);
  Random rng(9);
  for (int i = 0; i < 6; ++i) {
    const auto& intent =
        world_->queries()[rng.UniformUint64(world_->queries().size())];
    auto page = engine.Serve(user.id, intent.text);
    for (size_t j = 0; j < page.order.size(); ++j) {
      EXPECT_EQ(page.order[j], static_cast<int>(j));
    }
    const auto record = world_->click_model().Simulate(
        user, intent, page.ShownPage(), world_->corpus(), i, rng);
    engine.Observe(user.id, page, record);
    engine.TrainUser(user.id);
  }
}

TEST_F(EngineTest, PairCapIsEnforced) {
  EngineOptions options = DefaultOptions();
  options.max_training_pairs_per_user = 5;
  PwsEngine engine(&world_->search_backend(), &world_->ontology(), options);
  const auto& user = world_->users()[4];
  engine.RegisterUser(user.id);
  Random rng(10);
  for (int i = 0; i < 20; ++i) {
    const auto& intent =
        world_->queries()[rng.UniformUint64(world_->queries().size())];
    auto page = engine.Serve(user.id, intent.text);
    const auto record = world_->click_model().Simulate(
        user, intent, page.ShownPage(), world_->corpus(), i, rng);
    engine.Observe(user.id, page, record);
  }
  EXPECT_LE(engine.training_pair_count(user.id), 5);
}


TEST_F(EngineTest, ImportedStateReproducesServing) {
  // Train engine A, snapshot user state, import into a fresh engine B:
  // both must serve identical orders.
  EngineOptions options = DefaultOptions();
  PwsEngine a(&world_->search_backend(), &world_->ontology(), options);
  const auto& user = world_->users()[5];
  a.RegisterUser(user.id);
  Random rng(11);
  for (int i = 0; i < 10; ++i) {
    const auto& intent =
        world_->queries()[rng.UniformUint64(world_->queries().size())];
    auto page = a.Serve(user.id, intent.text);
    const auto record = world_->click_model().Simulate(
        user, intent, page.ShownPage(), world_->corpus(), i, rng);
    a.Observe(user.id, page, record);
  }
  a.TrainUser(user.id);

  PwsEngine b(&world_->search_backend(), &world_->ontology(), options);
  profile::UserProfile profile_copy = a.user_profile(user.id);
  ranking::RankSvm model_copy = a.user_model(user.id);
  b.ImportUserState(user.id, std::move(profile_copy), std::move(model_copy));

  for (const auto& intent : world_->queries()) {
    const auto pa = a.Serve(user.id, intent.text);
    const auto pb = b.Serve(user.id, intent.text);
    EXPECT_EQ(pa.order, pb.order) << intent.text;
  }
  EXPECT_EQ(b.training_pair_count(user.id), 0);
}

TEST_F(EngineTest, ObserveRejectsMismatchedRecord) {
  PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                   DefaultOptions());
  engine.RegisterUser(0);
  auto page = engine.Serve(0, "hotel booking");
  click::ClickRecord record;  // Wrong number of interactions.
  record.interactions.resize(1);
  EXPECT_DEATH(engine.Observe(0, page, record), "mismatch");
}

}  // namespace
}  // namespace pws::core
