// In-session personalization and bandit blend adaptation (DESIGN.md
// §17): SessionWindow segmentation/decay edge cases, deterministic
// bandit arm selection, per-click incremental training, the
// session-structured traffic generator's thread-count invariance, and
// the Serve/Observe session-state concurrency contract (the TSan CI
// job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "io/engine_state_io.h"
#include "profile/session_model.h"
#include "ranking/bandit.h"
#include "ranking/ranker.h"

namespace pws {
namespace {

using concepts::ConceptId;
using geo::LocationId;

// ---------- SessionWindow ----------

ConceptId Cid(const std::string& term) {
  return concepts::ConceptInterner::Global().Intern(term);
}

class SessionWindowTest : public ::testing::Test {
 protected:
  profile::SessionModelOptions options_;  // defaults: 8 events, decay 0.7
};

TEST_F(SessionWindowTest, EmptyWindowHasNoWeightAnywhere) {
  profile::SessionWindow window;
  EXPECT_TRUE(window.empty());
  IdMap<ConceptId, double> content;
  IdMap<LocationId, double> locations;
  window.AccumulateWeights(options_, &content, &locations);
  const ConceptId c = Cid("sess-empty");
  EXPECT_EQ(content.ValueOr(c, 0.0), 0.0);
  const std::vector<ConceptId> probe = {c};
  EXPECT_EQ(window.ResultAffinity(probe, {}, options_), 0.0);
}

TEST_F(SessionWindowTest, SingleClickSessionWeighsItsConceptsFully) {
  profile::SessionWindow window;
  const std::vector<ConceptId> content = {Cid("sess-a"), Cid("sess-b")};
  const std::vector<LocationId> locations = {3};
  window.AddClick(7, 0.0, content, locations, options_);
  EXPECT_EQ(window.size(), 1);
  IdMap<ConceptId, double> cw;
  IdMap<LocationId, double> lw;
  window.AccumulateWeights(options_, &cw, &lw);
  // age 0 ⇒ weight decay⁰ = 1 for every concept of the only event.
  EXPECT_DOUBLE_EQ(cw.ValueOr(Cid("sess-a"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cw.ValueOr(Cid("sess-b"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lw.ValueOr(3, 0.0), 1.0);
  // Affinity saturates: overlap 2 ⇒ 2 / (1 + 2).
  EXPECT_DOUBLE_EQ(window.ResultAffinity(content, {}, options_), 2.0 / 3.0);
}

TEST_F(SessionWindowTest, OlderEventsDecayGeometrically) {
  profile::SessionWindow window;
  const std::vector<ConceptId> first = {Cid("sess-old")};
  const std::vector<ConceptId> second = {Cid("sess-new")};
  window.AddClick(1, 0.0, first, {}, options_);
  window.AddClick(2, 0.0, second, {}, options_);
  IdMap<ConceptId, double> cw;
  IdMap<LocationId, double> lw;
  window.AccumulateWeights(options_, &cw, &lw);
  EXPECT_DOUBLE_EQ(cw.ValueOr(Cid("sess-new"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cw.ValueOr(Cid("sess-old"), 0.0), options_.decay);
}

TEST_F(SessionWindowTest, WindowIsBoundedOldestDroppedFirst) {
  options_.max_events = 3;
  profile::SessionWindow window;
  for (int i = 0; i < 10; ++i) {
    const std::vector<ConceptId> c = {Cid("sess-n" + std::to_string(i))};
    window.AddClick(i, 0.0, c, {}, options_);
  }
  EXPECT_EQ(window.size(), 3);
  EXPECT_EQ(window.events().front().query_id, 7);
  EXPECT_EQ(window.events().back().query_id, 9);
}

TEST_F(SessionWindowTest, GapStrictlyGreaterThanMaxStartsNewSession) {
  options_.max_gap_days = 1.0;
  profile::SessionWindow window;
  const std::vector<ConceptId> c = {Cid("sess-gap")};
  window.AddClick(1, 0.0, c, {}, options_);
  // Exactly the allowed gap: same session (matches click::SessionOptions
  // "strictly greater" semantics).
  window.AddClick(2, 1.0, c, {}, options_);
  EXPECT_EQ(window.size(), 2);
  // One ulp past the gap: the window resets to just the new event.
  window.AddClick(3, 2.0 + 1e-9, c, {}, options_);
  EXPECT_EQ(window.size(), 1);
  EXPECT_EQ(window.events().front().query_id, 3);
}

TEST_F(SessionWindowTest, PersistRestoreRoundTripsEvents) {
  profile::SessionWindow window;
  const std::vector<ConceptId> content = {Cid("sess-rt-a"), Cid("sess-rt-b")};
  const std::vector<LocationId> locations = {5, 9};
  window.AddClick(11, 2.5, content, {}, options_);
  window.AddClick(12, 2.5, {}, locations, options_);
  const auto persisted = core::PersistSessionEvents(window);
  profile::SessionWindow restored;
  restored.Restore(core::RestoreSessionEvents(persisted));
  ASSERT_EQ(restored.size(), window.size());
  for (int i = 0; i < window.size(); ++i) {
    EXPECT_EQ(restored.events()[i].query_id, window.events()[i].query_id);
    EXPECT_EQ(restored.events()[i].day, window.events()[i].day);
    EXPECT_EQ(restored.events()[i].content, window.events()[i].content);
    EXPECT_EQ(restored.events()[i].locations, window.events()[i].locations);
  }
}

// ---------- Bandit primitives ----------

TEST(BanditTest, ArmAlphaSpreadsEvenlyAcrossTheRange) {
  ranking::BanditOptions options;
  options.arms = 5;
  options.min_alpha = 0.1;
  options.max_alpha = 0.75;
  EXPECT_DOUBLE_EQ(ranking::ArmAlpha(0, options), 0.1);
  EXPECT_DOUBLE_EQ(ranking::ArmAlpha(4, options), 0.75);
  EXPECT_LT(ranking::ArmAlpha(1, options), ranking::ArmAlpha(2, options));
  options.arms = 1;
  EXPECT_DOUBLE_EQ(ranking::ArmAlpha(0, options), (0.1 + 0.75) / 2.0);
}

TEST(BanditTest, UntriedArmsArePlayedFirstInIndexOrder) {
  ranking::BanditOptions options;
  std::vector<ranking::BanditArm> arms(4);
  arms[0].pulls = 2;
  arms[0].reward_sum = 2.0;  // Best mean — but 1..3 are untried.
  EXPECT_EQ(ranking::SelectArm(arms, options, 123), 1);
  arms[1].pulls = 1;
  EXPECT_EQ(ranking::SelectArm(arms, options, 123), 2);
}

TEST(BanditTest, SelectionIsAPureFunctionOfStatsAndKey) {
  ranking::BanditOptions options;
  options.epsilon = 0.3;
  options.ucb_c = 0.0;  // Epsilon-greedy, the draw-key-sensitive policy.
  std::vector<ranking::BanditArm> arms(5);
  for (int i = 0; i < 5; ++i) {
    arms[i].pulls = 3 + i;
    arms[i].reward_sum = 0.5 * i;
  }
  for (uint64_t key : {1ull, 99ull, 0xdeadbeefull}) {
    const int a = ranking::SelectArm(arms, options, key);
    EXPECT_EQ(a, ranking::SelectArm(arms, options, key));
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
  // The draw key chain actually varies selections (exploration is live).
  std::set<int> seen;
  for (uint64_t key = 0; key < 64; ++key) {
    seen.insert(ranking::SelectArm(
        arms, options, ranking::BanditDrawKey(7, 0, 42, key)));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(BanditTest, Ucb1ConvergesOnTheBestArmAndIgnoresTheKey) {
  ranking::BanditOptions options;
  options.ucb_c = 0.5;
  std::vector<ranking::BanditArm> arms(3);
  // Arm 1 clearly best, all heavily pulled: UCB exploits.
  arms[0] = {100, 10.0};
  arms[1] = {100, 80.0};
  arms[2] = {100, 30.0};
  EXPECT_EQ(ranking::SelectArm(arms, options, 1), 1);
  EXPECT_EQ(ranking::SelectArm(arms, options, 999), 1);
  // A barely-pulled arm gets the optimism bonus.
  arms[2] = {1, 0.5};
  EXPECT_EQ(ranking::SelectArm(arms, options, 1), 2);
}

// ---------- Engine-level behavior ----------

class SessionEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 29;
    config.num_topics = 6;
    config.corpus.num_documents = 1500;
    config.users.num_users = 4;
    config.queries.queries_per_class = 8;
    config.backend.page_size = 12;
    world_ = new eval::World(config);
    for (int i = 0; i < 6; ++i) {
      queries_.push_back(world_->queries()[i * 3].text);
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    queries_.clear();
  }

  static std::unique_ptr<core::PwsEngine> NewEngine(
      const core::EngineOptions& options) {
    return std::make_unique<core::PwsEngine>(&world_->search_backend(),
                                             &world_->ontology(), options);
  }

  static click::ClickRecord MakeClick(const core::PersonalizedPage& page,
                                      int position, double dwell,
                                      int day = 0) {
    click::ClickRecord record;
    record.day = day;
    for (size_t j = 0; j < page.order.size(); ++j) {
      click::Interaction interaction;
      interaction.doc = page.backend_page().results[page.order[j]].doc;
      interaction.rank = static_cast<int>(j);
      if (static_cast<int>(j) == position) {
        interaction.clicked = true;
        interaction.dwell_units = dwell;
        interaction.last_click_in_session = true;
      }
      record.interactions.push_back(interaction);
    }
    return record;
  }

  static eval::World* world_;
  static std::vector<std::string> queries_;
};

eval::World* SessionEngineTest::world_ = nullptr;
std::vector<std::string> SessionEngineTest::queries_;

TEST_F(SessionEngineTest, SessionStrategyWithEmptySessionMatchesCombined) {
  // Before any click there is no session context: kSession must serve
  // exactly what kCombined serves (the boost path is inert, not a
  // perturbation).
  core::EngineOptions combined;
  combined.strategy = ranking::Strategy::kCombined;
  core::EngineOptions session;
  session.strategy = ranking::Strategy::kSession;
  auto a = NewEngine(combined);
  auto b = NewEngine(session);
  a->RegisterUser(0);
  b->RegisterUser(0);
  for (const std::string& query : queries_) {
    EXPECT_EQ(a->Serve(0, query).order, b->Serve(0, query).order) << query;
  }
}

TEST_F(SessionEngineTest, SessionClicksChangeSubsequentRanking) {
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kSession;
  options.session_boost_weight = 2.0;  // Loud, so the re-rank is visible.
  auto engine = NewEngine(options);
  engine->RegisterUser(0);
  const std::vector<int> before = engine->Serve(0, queries_[1]).order;
  // A burst of in-session clicks on another query's results.
  for (int i = 0; i < 3; ++i) {
    const core::PersonalizedPage page = engine->Serve(0, queries_[0]);
    engine->Observe(0, page, MakeClick(page, i + 1, 120.5 + i));
  }
  const std::vector<int> after = engine->Serve(0, queries_[1]).order;
  EXPECT_NE(before, after)
      << "session clicks produced no boost on a related query";
}

TEST_F(SessionEngineTest, BanditArmSequenceIsDeterministicAcrossEngines) {
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  options.bandit.enabled = true;
  auto a = NewEngine(options);
  auto b = NewEngine(options);
  a->RegisterUser(0);
  b->RegisterUser(0);
  std::set<int> arms_played;
  for (int round = 0; round < 3; ++round) {
    for (const std::string& query : queries_) {
      const core::PersonalizedPage pa = a->Serve(0, query);
      const core::PersonalizedPage pb = b->Serve(0, query);
      ASSERT_EQ(pa.bandit_arm, pb.bandit_arm) << "round " << round;
      ASSERT_EQ(pa.alpha_used, pb.alpha_used) << "round " << round;
      ASSERT_GE(pa.bandit_arm, 0);
      arms_played.insert(pa.bandit_arm);
      a->Observe(0, pa, MakeClick(pa, 1, 95.5));
      b->Observe(0, pb, MakeClick(pb, 1, 95.5));
    }
  }
  // Untried-first start-up guarantees real exploration happened.
  EXPECT_GT(arms_played.size(), 1u);
}

TEST_F(SessionEngineTest, IncrementalTrainingIsDeterministicAndTrains) {
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  options.incremental_training = true;
  auto a = NewEngine(options);
  auto b = NewEngine(options);
  a->RegisterUser(0);
  b->RegisterUser(0);
  for (const std::string& query : queries_) {
    const core::PersonalizedPage pa = a->Serve(0, query);
    const core::PersonalizedPage pb = b->Serve(0, query);
    a->Observe(0, pa, MakeClick(pa, 2, 130.25));
    b->Observe(0, pb, MakeClick(pb, 2, 130.25));
  }
  // Clicks alone trained the model — no TrainUser sweep ran.
  EXPECT_TRUE(a->user_model(0).is_trained());
  EXPECT_EQ(a->user_model(0).weights(), b->user_model(0).weights());
  for (const std::string& query : queries_) {
    EXPECT_EQ(a->Serve(0, query).order, b->Serve(0, query).order);
  }
}

TEST_F(SessionEngineTest, SessionTimeoutStraddlingASnapshotIsPreserved) {
  // A session window saved on day 0 and restored must expire exactly
  // like the live window when the next click lands past the gap: live
  // and restored engines converge on identical state and rankings.
  const std::string snapshot =
      ::testing::TempDir() + "/pws_session_snapshot";
  std::remove(snapshot.c_str());
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kSession;
  options.session.max_gap_days = 1.0;
  options.session_boost_weight = 2.0;
  auto live = NewEngine(options);
  live->RegisterUser(0);
  for (int i = 0; i < 2; ++i) {
    const core::PersonalizedPage page = live->Serve(0, queries_[0]);
    live->Observe(0, page, MakeClick(page, i + 1, 110.5, /*day=*/0));
  }
  ASSERT_TRUE(live->SaveState(snapshot).ok());
  auto restored = NewEngine(options);
  ASSERT_TRUE(restored->RestoreState(snapshot).ok());
  // Same pre-expiry state on both sides of the restart.
  for (const std::string& query : queries_) {
    ASSERT_EQ(live->Serve(0, query).order, restored->Serve(0, query).order);
  }
  // Day 3 is past the 1-day gap: both windows must reset to just the
  // new event, and keep serving identically after.
  {
    const core::PersonalizedPage pl = live->Serve(0, queries_[2]);
    const core::PersonalizedPage pr = restored->Serve(0, queries_[2]);
    ASSERT_EQ(pl.order, pr.order);
    live->Observe(0, pl, MakeClick(pl, 1, 140.25, /*day=*/3));
    restored->Observe(0, pr, MakeClick(pr, 1, 140.25, /*day=*/3));
  }
  for (const std::string& query : queries_) {
    EXPECT_EQ(live->Serve(0, query).order, restored->Serve(0, query).order)
        << query;
  }
  std::remove(snapshot.c_str());
}

TEST_F(SessionEngineTest, ConcurrentServeObserveOnSharedSessionState) {
  // The session window and bandit arms are written by Observe while
  // Serve reads them for the same user. Drive both sides hot from many
  // threads under the engine's documented contract — Serve concurrent
  // with anything, same-user Observe externally serialized — using the
  // serving layer's reader-writer discipline (shared for Serve,
  // exclusive for Observe; see serve/server.h). The TSan job turns
  // this into a race detector for the new session/bandit state.
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kSession;
  options.bandit.enabled = true;
  options.incremental_training = true;
  auto engine = NewEngine(options);
  engine->RegisterUser(0);
  engine->RegisterUser(1);
  std::shared_mutex user_locks[2];
  constexpr int kThreads = 6;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const click::UserId user = t % 2;
      for (int i = 0; i < 30; ++i) {
        const std::string& query = queries_[(t + i) % queries_.size()];
        if (t % 2 == 0) {
          // Click path: exclusive, like the server's `click` verb.
          std::unique_lock<std::shared_mutex> lock(user_locks[user]);
          const core::PersonalizedPage page = engine->Serve(user, query);
          if (page.order.empty()) failed = true;
          engine->Observe(user, page, MakeClick(page, i % 3 + 1, 100.5 + i));
        } else {
          std::shared_lock<std::shared_mutex> lock(user_locks[user]);
          if (engine->Serve(user, query).order.empty()) failed = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(engine->registered_user_count(), 2);
}

// ---------- Session-structured traffic generation ----------

class SessionTrafficTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 31;
    config.corpus.num_documents = 1500;
    config.users.num_users = 4;
    config.queries.queries_per_class = 6;
    config.backend.page_size = 12;
    world_ = new eval::World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static eval::SimulationOptions FastSim() {
    eval::SimulationOptions sim;
    sim.train_days = 2;
    sim.queries_per_user_day = 4;
    sim.test_queries_per_user = 6;
    sim.ctr_samples_per_impression = 2;
    sim.session_stickiness = 0.8;
    sim.measure_online = true;
    return sim;
  }

  static eval::World* world_;
};

eval::World* SessionTrafficTest::world_ = nullptr;

TEST_F(SessionTrafficTest, SessionTrafficIsBitIdenticalAcrossThreadCounts) {
  // The generator samples sticky topics from the per-run RNG; the
  // harness parallelizes across runs, never inside one, so every
  // thread count must produce bit-identical aggregates.
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kSession;
  options.bandit.enabled = true;
  eval::SimulationOptions sequential = FastSim();
  sequential.threads = 1;
  eval::SimulationOptions parallel = FastSim();
  parallel.threads = 2;
  const eval::StrategyMetrics a =
      eval::SimulationHarness(world_, sequential).RunAveraged(options, 2);
  const eval::StrategyMetrics b =
      eval::SimulationHarness(world_, parallel).RunAveraged(options, 2);
  EXPECT_DOUBLE_EQ(a.mrr, b.mrr);
  EXPECT_DOUBLE_EQ(a.ndcg10, b.ndcg10);
  EXPECT_DOUBLE_EQ(a.avg_rank_relevant, b.avg_rank_relevant);
  EXPECT_DOUBLE_EQ(a.online_ndcg10, b.online_ndcg10);
  EXPECT_DOUBLE_EQ(a.online_mrr, b.online_mrr);
  EXPECT_EQ(a.online_impressions, b.online_impressions);
  EXPECT_GT(a.online_impressions, 0);
}

TEST_F(SessionTrafficTest, StickinessActuallyShapesTraffic) {
  // stickiness 0 must reproduce the original i.i.d. sampler (the flag
  // is opt-in); a high stickiness draws a different query stream, so
  // training trajectories — and metrics — diverge.
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  eval::SimulationOptions iid = FastSim();
  iid.session_stickiness = 0.0;
  eval::SimulationOptions sticky = FastSim();
  const eval::StrategyMetrics a =
      eval::SimulationHarness(world_, iid).Run(options);
  const eval::StrategyMetrics b =
      eval::SimulationHarness(world_, iid).Run(options);
  EXPECT_DOUBLE_EQ(a.online_ndcg10, b.online_ndcg10);  // Reproducible.
  const eval::StrategyMetrics c =
      eval::SimulationHarness(world_, sticky).Run(options);
  EXPECT_TRUE(a.online_ndcg10 != c.online_ndcg10 ||
              a.online_mrr != c.online_mrr || a.mrr != c.mrr)
      << "session stickiness had no effect on the click stream";
}

TEST_F(SessionTrafficTest, OnlineMetricsAreOptIn) {
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  eval::SimulationOptions sim = FastSim();
  sim.measure_online = false;
  const eval::StrategyMetrics m =
      eval::SimulationHarness(world_, sim).Run(options);
  EXPECT_EQ(m.online_impressions, 0);
  EXPECT_EQ(m.online_ndcg10, 0.0);
}

// ---------- Strategy parsing ----------

TEST(StrategyParseTest, RoundTripsEveryStrategy) {
  for (const ranking::Strategy s :
       {ranking::Strategy::kBaseline, ranking::Strategy::kContentOnly,
        ranking::Strategy::kLocationOnly, ranking::Strategy::kCombined,
        ranking::Strategy::kCombinedGps, ranking::Strategy::kSession}) {
    ranking::Strategy parsed;
    ASSERT_TRUE(
        ranking::StrategyFromString(ranking::StrategyToString(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  ranking::Strategy parsed = ranking::Strategy::kBaseline;
  EXPECT_FALSE(ranking::StrategyFromString("sessions", &parsed));
  EXPECT_EQ(parsed, ranking::Strategy::kBaseline);  // Untouched on failure.
}

}  // namespace
}  // namespace pws
