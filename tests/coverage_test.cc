// Additional targeted coverage: behaviours exercised indirectly by the
// integration tests but worth pinning individually.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "backend/inverted_index.h"
#include "backend/search_backend.h"
#include "concepts/location_concepts.h"
#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "geo/gazetteer.h"
#include "util/logging.h"
#include "util/timer.h"

namespace pws {
namespace {

// ---------- BM25 parameter behaviour ----------

corpus::Corpus SmallCorpus() {
  corpus::Corpus corpus;
  auto add = [&](corpus::DocId id, const std::string& title,
                 const std::string& body) {
    corpus::Document doc;
    doc.id = id;
    doc.title = title;
    doc.body = body;
    doc.topic_mixture_truth = {1.0};
    doc.primary_topic_truth = 0;
    corpus.Add(doc);
  };
  // Doc 0: short, one occurrence. Doc 1: long, one occurrence.
  add(0, "t", "target alpha beta");
  add(1, "t", "target one two three four five six seven eight nine ten "
              "eleven twelve thirteen fourteen fifteen sixteen");
  // Doc 2: short, many occurrences.
  add(2, "t", "target target target target");
  return corpus;
}

TEST(Bm25Test, LengthNormalizationPrefersShortDocs) {
  const corpus::Corpus corpus = SmallCorpus();
  const backend::InvertedIndex index(&corpus);
  backend::Bm25Params params;  // b = 0.75: length-normalized.
  EXPECT_GT(index.Score({"target"}, 0, params),
            index.Score({"target"}, 1, params));
  // With b = 0 the length penalty vanishes: equal tf -> equal score.
  params.b = 0.0;
  EXPECT_NEAR(index.Score({"target"}, 0, params),
              index.Score({"target"}, 1, params), 1e-9);
}

TEST(Bm25Test, TermFrequencySaturatesWithK1) {
  const corpus::Corpus corpus = SmallCorpus();
  const backend::InvertedIndex index(&corpus);
  backend::Bm25Params params;
  params.b = 0.0;
  // More occurrences always score higher...
  EXPECT_GT(index.Score({"target"}, 2, params),
            index.Score({"target"}, 0, params));
  // ...but with k1 -> 0 term frequency stops mattering.
  params.k1 = 1e-6;
  EXPECT_NEAR(index.Score({"target"}, 2, params),
              index.Score({"target"}, 0, params), 1e-3);
}

// ---------- Location concept min_doc_count ----------

TEST(LocationConceptsTest, MinDocCountFiltersRareNodes) {
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  corpus::Corpus corpus;
  for (int i = 0; i < 4; ++i) {
    corpus::Document doc;
    doc.id = i;
    doc.body = i == 0 ? "a note about whistler" : "all about tokyo tonight";
    corpus.Add(doc);
  }
  backend::ResultPage page;
  for (int i = 0; i < 4; ++i) {
    backend::SearchResult result;
    result.doc = i;
    result.rank = i;
    page.results.push_back(result);
  }
  concepts::LocationConceptOptions options;
  options.min_doc_count = 2;
  concepts::LocationConceptExtractor extractor(&world, options);
  const auto locations = extractor.Extract(page, corpus);
  EXPECT_GT(locations.WeightOf(world.Lookup("tokyo")[0]), 0.0);
  EXPECT_EQ(locations.WeightOf(world.Lookup("whistler")[0]), 0.0);
  // Per-result sets are unfiltered (they feed feature extraction).
  EXPECT_EQ(locations.per_result[0].size(), 1u);
}

// ---------- Harness outcome plumbing ----------

class OutcomeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.corpus.num_documents = 1500;
    config.users.num_users = 3;
    config.queries.queries_per_class = 5;
    config.backend.page_size = 10;
    world_ = new eval::World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static eval::World* world_;
};

eval::World* OutcomeTest::world_ = nullptr;

TEST_F(OutcomeTest, OutcomesAlignAcrossConfigurations) {
  eval::SimulationOptions sim;
  sim.train_days = 1;
  sim.queries_per_user_day = 2;
  sim.test_queries_per_user = 6;
  eval::SimulationHarness harness(world_, sim);

  std::vector<eval::ImpressionOutcome> a;
  std::vector<eval::ImpressionOutcome> b;
  core::EngineOptions baseline;
  baseline.strategy = ranking::Strategy::kBaseline;
  core::EngineOptions combined;
  combined.strategy = ranking::Strategy::kCombined;
  const auto ma = harness.Run(baseline, &a);
  const auto mb = harness.Run(combined, &b);
  ASSERT_EQ(a.size(), static_cast<size_t>(ma.impressions));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(a[i].query_class, b[i].query_class);
  }
  (void)mb;
  // Outcome means agree with the aggregate metrics.
  double rr_sum = 0.0;
  for (const auto& outcome : a) rr_sum += outcome.reciprocal_rank;
  EXPECT_NEAR(rr_sum / a.size(), ma.mrr, 1e-9);
}

TEST_F(OutcomeTest, MapMetricIsPopulatedAndBounded) {
  eval::SimulationOptions sim;
  sim.train_days = 1;
  sim.queries_per_user_day = 2;
  sim.test_queries_per_user = 5;
  eval::SimulationHarness harness(world_, sim);
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kBaseline;
  const auto metrics = harness.Run(options);
  EXPECT_GT(metrics.mean_average_precision, 0.0);
  EXPECT_LE(metrics.mean_average_precision, 1.0);
}

// ---------- Engine odds and ends ----------

TEST_F(OutcomeTest, ShownPageIsIdempotentUnderBaseline) {
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kBaseline;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  engine.RegisterUser(0);
  const auto page = engine.Serve(0, "hotel booking");
  const auto shown = page.ShownPage();
  ASSERT_EQ(shown.results.size(), page.backend_page().results.size());
  for (size_t i = 0; i < shown.results.size(); ++i) {
    EXPECT_EQ(shown.results[i].doc, page.backend_page().results[i].doc);
  }
}

TEST_F(OutcomeTest, QueryAnalysisCachingDoesNotChangeResults) {
  core::EngineOptions options;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  engine.RegisterUser(0);
  const auto first = engine.Serve(0, "restaurant menu");
  const auto second = engine.Serve(0, "restaurant menu");  // Cached.
  EXPECT_EQ(first.order, second.order);
  EXPECT_EQ(first.backend_page().results.size(),
            second.backend_page().results.size());
}

// ---------- Timer / logging smoke ----------

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GT(timer.ElapsedMillis(), 0.0);
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(LoggingTest, LevelFilteringRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  PWS_LOG(kInfo) << "suppressed line (not visible in test output)";
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace pws
