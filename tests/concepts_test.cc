#include <gtest/gtest.h>

#include "backend/search_backend.h"
#include "concepts/content_extractor.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/gazetteer.h"

namespace pws::concepts {
namespace {

backend::ResultPage MakePage(const std::string& query,
                             const std::vector<std::string>& snippets) {
  backend::ResultPage page;
  page.query = query;
  for (size_t i = 0; i < snippets.size(); ++i) {
    backend::SearchResult result;
    result.doc = static_cast<corpus::DocId>(i);
    result.rank = static_cast<int>(i);
    result.snippet = snippets[i];
    result.title = "";
    page.results.push_back(std::move(result));
  }
  return page;
}

// ---------- Content extraction ----------

TEST(ContentExtractorTest, SupportThresholdHonored) {
  ContentExtractorOptions options;
  options.min_support = 0.5;
  options.include_bigrams = false;
  ContentConceptExtractor extractor(options);
  // "booking" in 3/4 snippets, "cheap" in 1/4.
  const auto page = MakePage("hotel", {"booking rooms", "booking suite",
                                       "booking deals", "cheap stay"});
  const auto concepts = extractor.Extract(page, nullptr);
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(concepts[0].term, "book");  // Stemmed.
  EXPECT_DOUBLE_EQ(concepts[0].support, 0.75);
  EXPECT_EQ(concepts[0].snippet_count, 3);
}

TEST(ContentExtractorTest, QueryTermsExcluded) {
  ContentExtractorOptions options;
  options.min_support = 0.3;
  ContentConceptExtractor extractor(options);
  const auto page =
      MakePage("hotel booking", {"hotel booking cheap", "hotel booking cheap"});
  const auto concepts = extractor.Extract(page, nullptr);
  for (const auto& c : concepts) {
    EXPECT_EQ(c.term.find("hotel"), std::string::npos);
    EXPECT_EQ(c.term.find("book"), std::string::npos);
  }
}

TEST(ContentExtractorTest, MaxSupportDropsUniversalWords) {
  ContentExtractorOptions options;
  options.min_support = 0.2;
  options.max_support = 0.8;
  options.include_bigrams = false;
  ContentConceptExtractor extractor(options);
  const auto page = MakePage(
      "query", {"ubiquitous alpha", "ubiquitous beta", "ubiquitous alpha",
                "ubiquitous gamma", "ubiquitous alpha"});
  const auto concepts = extractor.Extract(page, nullptr);
  for (const auto& c : concepts) {
    EXPECT_NE(c.term, "ubiquit");  // Present in 100% of snippets.
  }
}

TEST(ContentExtractorTest, BigramConcepts) {
  ContentExtractorOptions options;
  options.min_support = 0.5;
  ContentConceptExtractor extractor(options);
  const auto page = MakePage(
      "query", {"ski resort deals", "ski resort offers", "powder maps"});
  const auto concepts = extractor.Extract(page, nullptr);
  bool found_bigram = false;
  for (const auto& c : concepts) {
    if (c.term == "ski resort") found_bigram = true;
  }
  EXPECT_TRUE(found_bigram);
}

TEST(ContentExtractorTest, IncidenceAlignsWithConcepts) {
  ContentExtractorOptions options;
  options.min_support = 0.4;
  options.include_bigrams = false;
  ContentConceptExtractor extractor(options);
  const auto page =
      MakePage("q", {"apple banana", "apple cherry", "banana apple"});
  SnippetIncidence incidence;
  const auto concepts = extractor.Extract(page, &incidence);
  ASSERT_EQ(incidence.size(), 3u);
  for (size_t s = 0; s < incidence.size(); ++s) {
    for (int index : incidence[s]) {
      ASSERT_GE(index, 0);
      ASSERT_LT(index, static_cast<int>(concepts.size()));
      // The concept term must actually occur in that snippet.
      EXPECT_NE(page.results[s].snippet.find(concepts[index].term.substr(0, 4)),
                std::string::npos);
    }
  }
}

TEST(ContentExtractorTest, EmptyPage) {
  ContentConceptExtractor extractor(ContentExtractorOptions{});
  SnippetIncidence incidence;
  const auto concepts =
      extractor.Extract(MakePage("q", {}), &incidence);
  EXPECT_TRUE(concepts.empty());
  EXPECT_TRUE(incidence.empty());
}

TEST(ContentExtractorTest, MaxConceptsCap) {
  ContentExtractorOptions options;
  options.min_support = 0.1;
  options.max_concepts = 2;
  ContentConceptExtractor extractor(options);
  const auto page = MakePage(
      "q", {"one two three four", "one two three four", "one two three four"});
  const auto concepts = extractor.Extract(page, nullptr);
  EXPECT_LE(concepts.size(), 2u);
}

// ---------- Content ontology ----------

TEST(ContentOntologyTest, CooccurrenceSimilarity) {
  // Concepts 0 and 1 always co-occur; concept 2 never with them.
  std::vector<ContentConcept> concepts = {
      {"a", 0.6, 3}, {"b", 0.6, 3}, {"c", 0.4, 2}};
  SnippetIncidence incidence = {{0, 1}, {0, 1}, {0, 1}, {2}, {2}};
  ContentOntology ontology(std::move(concepts), incidence);
  EXPECT_DOUBLE_EQ(ontology.Similarity(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ontology.Similarity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(ontology.Similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ontology.Similarity(1, 0), ontology.Similarity(0, 1));
}

TEST(ContentOntologyTest, PartialCooccurrence) {
  std::vector<ContentConcept> concepts = {{"a", 0.5, 2}, {"b", 0.5, 2}};
  // a in snippets {0,1}, b in {1,2}: cooc 1, occ 2 and 2 -> 0.5.
  SnippetIncidence incidence = {{0}, {0, 1}, {1}};
  ContentOntology ontology(std::move(concepts), incidence);
  EXPECT_NEAR(ontology.Similarity(0, 1), 0.5, 1e-12);
}

TEST(ContentOntologyTest, NeighborsSortedBySimilarity) {
  std::vector<ContentConcept> concepts = {
      {"a", 0.5, 3}, {"b", 0.5, 3}, {"c", 0.5, 3}};
  // b co-occurs with a twice, c once.
  SnippetIncidence incidence = {{0, 1}, {0, 1}, {0, 2}};
  ContentOntology ontology(std::move(concepts), incidence);
  const auto neighbours = ontology.Neighbors(0, 0.1);
  ASSERT_EQ(neighbours.size(), 2u);
  EXPECT_EQ(neighbours[0], 1);
  EXPECT_EQ(neighbours[1], 2);
  EXPECT_TRUE(ontology.Neighbors(0, 0.99).empty());
}

TEST(ContentOntologyTest, FindByTerm) {
  std::vector<ContentConcept> concepts = {{"alpha", 0.5, 1}, {"beta", 0.4, 1}};
  ContentOntology ontology(std::move(concepts), {{0, 1}});
  EXPECT_EQ(ontology.Find("beta"), 1);
  EXPECT_EQ(ontology.Find("gamma"), -1);
}

TEST(ContentOntologyTest, EmptyOntology) {
  ContentOntology ontology;
  EXPECT_EQ(ontology.size(), 0);
}

// ---------- Location concepts ----------

class LocationConceptsTest : public ::testing::Test {
 protected:
  LocationConceptsTest() : ontology_(geo::BuildWorldGazetteer()) {}

  geo::LocationId Only(const std::string& name) const {
    const auto ids = ontology_.Lookup(name);
    EXPECT_EQ(ids.size(), 1u);
    return ids[0];
  }

  geo::LocationOntology ontology_;
};

TEST_F(LocationConceptsTest, ExtractsAndRollsUp) {
  corpus::Corpus corpus;
  corpus::Document d0;
  d0.id = 0;
  d0.title = "whistler skiing";
  d0.body = "powder day in whistler with fresh snow";
  corpus.Add(d0);
  corpus::Document d1;
  d1.id = 1;
  d1.title = "victoria tour";
  d1.body = "gardens of victoria british columbia";
  corpus.Add(d1);

  backend::ResultPage page;
  page.query = "ski";
  for (int i = 0; i < 2; ++i) {
    backend::SearchResult result;
    result.doc = i;
    result.rank = i;
    page.results.push_back(result);
  }

  LocationConceptExtractor extractor(&ontology_, LocationConceptOptions{});
  const QueryLocationConcepts concepts = extractor.Extract(page, corpus);

  ASSERT_EQ(concepts.per_result.size(), 2u);
  EXPECT_EQ(concepts.per_result[0].size(), 1u);
  EXPECT_EQ(concepts.per_result[0][0], Only("whistler"));

  // British Columbia is rolled up from both docs -> weight 1.0.
  const geo::LocationId bc = Only("british columbia");
  EXPECT_DOUBLE_EQ(concepts.WeightOf(bc), 1.0);
  EXPECT_DOUBLE_EQ(concepts.WeightOf(Only("whistler")), 0.5);
  EXPECT_DOUBLE_EQ(concepts.WeightOf(Only("tokyo")), 0.0);
}

TEST_F(LocationConceptsTest, NoRollupOption) {
  corpus::Corpus corpus;
  corpus::Document d0;
  d0.id = 0;
  d0.body = "a trip to whistler";
  corpus.Add(d0);
  backend::ResultPage page;
  backend::SearchResult r;
  r.doc = 0;
  page.results.push_back(r);

  LocationConceptOptions options;
  options.rollup_to_ancestors = false;
  LocationConceptExtractor extractor(&ontology_, options);
  const auto concepts = extractor.Extract(page, corpus);
  EXPECT_DOUBLE_EQ(concepts.WeightOf(Only("whistler")), 1.0);
  EXPECT_DOUBLE_EQ(concepts.WeightOf(Only("british columbia")), 0.0);
}

TEST_F(LocationConceptsTest, AggregatedSortedByWeight) {
  corpus::Corpus corpus;
  for (int i = 0; i < 3; ++i) {
    corpus::Document d;
    d.id = i;
    d.body = i < 2 ? "dinner in tokyo" : "dinner in osaka";
    corpus.Add(d);
  }
  backend::ResultPage page;
  for (int i = 0; i < 3; ++i) {
    backend::SearchResult r;
    r.doc = i;
    r.rank = i;
    page.results.push_back(r);
  }
  LocationConceptExtractor extractor(&ontology_, LocationConceptOptions{});
  const auto concepts = extractor.Extract(page, corpus);
  ASSERT_GE(concepts.aggregated.size(), 2u);
  for (size_t i = 1; i < concepts.aggregated.size(); ++i) {
    EXPECT_GE(concepts.aggregated[i - 1].weight, concepts.aggregated[i].weight);
  }
  // Japan rolled up from all three docs.
  EXPECT_DOUBLE_EQ(concepts.WeightOf(Only("japan")), 1.0);
}

}  // namespace
}  // namespace pws::concepts
