// Observability layer: metric primitives (counters, gauges, fixed-bucket
// latency histograms), rolling-window histograms and SLO accounting,
// registry snapshot semantics, trace spans, request traces, the Chrome
// trace export, and an end-to-end check that a harness run populates
// the engine.serve.* pipeline histograms.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/json.h"

namespace pws::obs {
namespace {

// ---------- Histogram buckets ----------

TEST(HistogramTest, ValuesLandInTheCorrectBuckets) {
  // Slot i counts values in (bounds[i-1], bounds[i]]; the final slot is
  // the overflow bucket.
  Histogram h({10.0, 100.0, 1000.0});
  h.Record(1.0);
  h.Record(10.0);    // On the bound -> first bucket.
  h.Record(10.5);    // Just past -> second bucket.
  h.Record(100.0);
  h.Record(999.0);
  h.Record(5000.0);  // Overflow.
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(s.max, 5000.0);
  EXPECT_DOUBLE_EQ(s.sum, 1.0 + 10.0 + 10.5 + 100.0 + 999.0 + 5000.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasingPowersOfTwo) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBoundsUs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 60'000'000.0);  // Covers a minute-long stage.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], 2.0 * bounds[i - 1]);
  }
}

// ---------- Percentiles ----------

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  // 100 values uniform over (0, 100] with bounds every 10: percentiles
  // should come out near the exact order statistics.
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.Record(static_cast<double>(v));
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.TotalCount(), 100u);
  EXPECT_NEAR(s.Percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(s.Percentile(95.0), 95.0, 1.0);
  EXPECT_NEAR(s.Percentile(99.0), 99.0, 1.0);
  EXPECT_NEAR(s.Percentile(10.0), 10.0, 1.0);
  // Degenerate percentiles hit the extremes of the distribution.
  EXPECT_LE(s.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
}

TEST(HistogramTest, PercentileNeverExceedsObservedMax) {
  // A single sample low inside a wide bucket: interpolation toward the
  // bucket's upper bound must be clamped to the recorded max.
  Histogram h({1000.0});
  h.Record(3.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.0), 3.0);
}

TEST(HistogramTest, OverflowBucketInterpolatesTowardMax) {
  Histogram h({10.0});
  h.Record(50.0);
  h.Record(90.0);
  const HistogramSnapshot s = h.Snapshot();
  const double p99 = s.Percentile(99.0);
  EXPECT_GT(p99, 10.0);
  EXPECT_LE(p99, 90.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h(Histogram::DefaultLatencyBoundsUs());
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 0.0);
}

// ---------- Snapshot merge ----------

TEST(HistogramSnapshotTest, MergeAddsCountsAndTakesMaxOfMax) {
  Histogram a({10.0, 100.0});
  Histogram b({10.0, 100.0});
  a.Record(5.0);
  a.Record(50.0);
  b.Record(50.0);
  b.Record(500.0);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(merged.sum, 605.0);
  EXPECT_DOUBLE_EQ(merged.max, 500.0);
  // Merging into an empty snapshot copies; incompatible layouts no-op.
  HistogramSnapshot empty;
  empty.Merge(merged);
  EXPECT_EQ(empty.TotalCount(), 4u);
  HistogramSnapshot other = Histogram({1.0}).Snapshot();
  other.Merge(merged);
  EXPECT_EQ(other.TotalCount(), 0u);
}

// ---------- Counter / Gauge ----------

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge gauge;
  gauge.Add(3);
  gauge.Add(4);
  gauge.Add(-5);
  EXPECT_EQ(gauge.Value(), 2);
  EXPECT_EQ(gauge.Max(), 7);
  gauge.Set(1);
  EXPECT_EQ(gauge.Value(), 1);
  EXPECT_EQ(gauge.Max(), 7);  // Max survives a lower Set.
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(gauge.Max(), 0);
}

// ---------- Registry ----------

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("reg.test.counter");
  Counter* c2 = registry.GetCounter("reg.test.counter");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(registry.GetGauge("reg.test.gauge"),
            registry.GetGauge("reg.test.gauge"));
  EXPECT_EQ(registry.GetHistogram("reg.test.hist"),
            registry.GetHistogram("reg.test.hist"));
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceAndHandlesStayValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("reg.reset.counter");
  Histogram* hist = registry.GetHistogram("reg.reset.hist");
  counter->Increment(5);
  hist->Record(42.0);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Snapshot().TotalCount(), 0u);
  counter->Increment();  // The old handle still feeds the registry.
  EXPECT_EQ(registry.Snapshot().counters.at("reg.reset.counter"), 1u);
}

TEST(MetricsRegistryTest, SnapshotWhileWritingSeesMonotonicConsistentView) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("reg.race.counter");
  Histogram* hist = registry.GetHistogram("reg.race.hist", {10.0, 100.0});
  constexpr uint64_t kTotal = 200000;
  std::thread writer([&] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      counter->Increment();
      hist->Record(static_cast<double>(i % 120));
    }
  });
  uint64_t last_counter = 0;
  uint64_t last_hist = 0;
  for (int i = 0; i < 50; ++i) {
    const RegistrySnapshot snapshot = registry.Snapshot();
    const uint64_t c = snapshot.counters.at("reg.race.counter");
    const uint64_t h = snapshot.histograms.at("reg.race.hist").TotalCount();
    // Never torn, never above what was written, never going backwards.
    EXPECT_LE(c, kTotal);
    EXPECT_LE(h, kTotal);
    EXPECT_GE(c, last_counter);
    EXPECT_GE(h, last_hist);
    last_counter = c;
    last_hist = h;
  }
  writer.join();
  const RegistrySnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.counters.at("reg.race.counter"), kTotal);
  EXPECT_EQ(final_snapshot.histograms.at("reg.race.hist").TotalCount(),
            kTotal);
}

TEST(MetricsRegistryTest, JsonSnapshotHasAllSectionsAndSummaryKeys) {
  MetricsRegistry registry;
  registry.GetCounter("json.counter")->Increment(3);
  registry.GetGauge("json.gauge")->Set(9);
  registry.GetHistogram("json.hist")->Record(123.0);
  const std::string json = registry.Snapshot().ToJson();
  for (const char* needle :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"json.counter\": 3",
        "\"json.gauge\": {\"value\": 9, \"max\": 9}", "\"json.hist\"",
        "\"count\": 1", "\"p50\"", "\"p95\"", "\"p99\"", "\"buckets\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

TEST(MetricsRegistryTest, TextReportListsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("text.counter")->Increment();
  registry.GetHistogram("text.hist")->Record(10.0);
  registry.GetGauge("text.gauge")->Set(2);
  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("text.counter"), std::string::npos);
  EXPECT_NE(text.find("text.hist"), std::string::npos);
  EXPECT_NE(text.find("text.gauge"), std::string::npos);
}

// ---------- Windowed histograms ----------

// The time base is injected everywhere, so these tests are fully
// deterministic: "now" is whatever the test says it is.

TEST(WindowedHistogramTest, SnapshotCoversOnlyTheLiveWindow) {
  // 4 slots of 1000us — a 4ms window.
  WindowedHistogram h({10.0, 100.0, 1000.0}, /*num_slots=*/4,
                      /*slot_width_us=*/1000);
  h.Record(5.0, /*now_us=*/0);
  h.Record(50.0, /*now_us=*/1500);   // Second slot.
  h.Record(500.0, /*now_us=*/3500);  // Fourth slot.
  // All three slots are inside the window at t=3.9ms.
  EXPECT_EQ(h.Snapshot(3900).TotalCount(), 3u);
  // At t=4.5ms the t=0 slot has rotated out.
  EXPECT_EQ(h.Snapshot(4500).TotalCount(), 2u);
  // At t=8ms everything has expired.
  EXPECT_EQ(h.Snapshot(8000).TotalCount(), 0u);
}

TEST(WindowedHistogramTest, SlotIsRecycledOnWraparound) {
  WindowedHistogram h({10.0}, /*num_slots=*/2, /*slot_width_us=*/1000);
  h.Record(1.0, 0);
  h.Record(1.0, 100);
  // t=2000 maps onto the same slot as t=0; the recycle must drop the
  // two old samples, not accumulate into them.
  h.Record(5.0, 2000);
  const HistogramSnapshot s = h.Snapshot(2000);
  EXPECT_EQ(s.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(s.sum, 5.0);
}

TEST(WindowedHistogramTest, PercentilesReflectOnlyLiveSamples) {
  WindowedHistogram h(Histogram::DefaultLatencyBoundsUs(),
                      WindowedHistogram::kDefaultSlots,
                      WindowedHistogram::kDefaultSlotWidthUs);
  const int64_t window = h.window_us();
  // An ancient burst of slow requests, then a recent fast regime.
  for (int i = 0; i < 100; ++i) h.Record(100000.0, 0);
  const int64_t later = window * 3;
  for (int i = 0; i < 100; ++i) h.Record(100.0, later);
  const HistogramSnapshot s = h.Snapshot(later);
  EXPECT_EQ(s.TotalCount(), 100u);
  EXPECT_LT(s.Percentile(99.0), 1000.0);  // The burst is gone.
}

TEST(WindowedHistogramTest, ResetClearsEverySlot) {
  WindowedHistogram h({10.0}, 2, 1000);
  h.Record(1.0, 0);
  h.Reset();
  EXPECT_EQ(h.Snapshot(0).TotalCount(), 0u);
}

TEST(WindowedCounterTest, SumExpiresWithTheWindow) {
  WindowedCounter counter(/*num_slots=*/2, /*slot_width_us=*/1000);
  counter.Increment(0);
  counter.Increment(0);
  counter.Increment(1500);
  EXPECT_EQ(counter.Sum(1900), 3u);
  EXPECT_EQ(counter.Sum(2500), 1u);  // The t=0 slot rotated out.
  EXPECT_EQ(counter.Sum(9000), 0u);
}

// ---------- SLO tracker ----------

TEST(SloTrackerTest, TracksViolationsErrorsShedAndBurn) {
  SloTracker slo;
  SloTracker::Config config;
  config.target_us = 1000.0;
  config.goal = 0.9;  // 10% violation allowance -> burn = rate / 0.1.
  slo.Configure(config);
  const int64_t t = 0;
  for (int i = 0; i < 8; ++i) slo.RecordRequest(500.0, /*error=*/false, t);
  slo.RecordRequest(5000.0, /*error=*/false, t);  // Violation.
  slo.RecordRequest(500.0, /*error=*/true, t);    // Error, not violation.
  slo.RecordShed(t);
  const SloTracker::Snapshot s = slo.Snap(t);
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.window_requests, 10u);
  EXPECT_EQ(s.window_violations, 1u);
  EXPECT_EQ(s.window_errors, 1u);
  EXPECT_EQ(s.window_shed, 1u);
  EXPECT_DOUBLE_EQ(s.WindowViolationRate(), 0.1);
  EXPECT_DOUBLE_EQ(s.WindowErrorRate(), 0.1);
  // Shed rate is over offered load: 1 shed out of 11 offered.
  EXPECT_NEAR(s.WindowShedRate(), 1.0 / 11.0, 1e-12);
  // Violating exactly at the allowance -> burn rate 1.0.
  EXPECT_NEAR(s.BurnRate(), 1.0, 1e-9);
  EXPECT_EQ(s.total_requests, 10u);
}

TEST(SloTrackerTest, WindowCountsExpireTotalsDoNot) {
  SloTracker slo;
  SloTracker::Config config;
  config.target_us = 1000.0;
  slo.Configure(config);
  slo.RecordRequest(5000.0, false, 0);
  const int64_t later = 60'000'000;  // Far past the ~10s window.
  const SloTracker::Snapshot s = slo.Snap(later);
  EXPECT_EQ(s.window_requests, 0u);
  EXPECT_EQ(s.total_requests, 1u);
  EXPECT_EQ(s.total_violations, 1u);
  EXPECT_DOUBLE_EQ(s.BurnRate(), 0.0);  // Nothing burning *now*.
}

TEST(SloTrackerTest, WithoutTargetTracksRatesButNotViolations) {
  SloTracker slo;  // Default config: no latency target.
  slo.RecordRequest(1e9, /*error=*/true, 0);
  const SloTracker::Snapshot s = slo.Snap(0);
  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(s.window_violations, 0u);
  EXPECT_DOUBLE_EQ(s.WindowErrorRate(), 1.0);
  EXPECT_DOUBLE_EQ(s.BurnRate(), 0.0);
  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"enabled\": false"), std::string::npos) << json;
}

// ---------- Spans and traces ----------

TEST(TraceTest, SpanRecordsIntoTheGlobalRegistry) {
  MetricsRegistry::Global().Reset();
  {
    PWS_SPAN("obs_test.standalone");
  }
#if !defined(PWS_OBS_DISABLED)
  const RegistrySnapshot snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snapshot.histograms.count("obs_test.standalone.us"), 1u);
  EXPECT_EQ(snapshot.histograms.at("obs_test.standalone.us").TotalCount(),
            1u);
#endif
}

#if !defined(PWS_OBS_DISABLED)
TEST(TraceTest, QueryTraceCapturesSpansWhenCollectorEnabled) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable(/*capacity=*/4);
  collector.Clear();
  {
    PWS_QUERY_TRACE("unit-test-query");
    PWS_SPAN("obs_test.traced");
  }
  collector.Disable();
  const std::vector<TraceRecord> records = collector.Dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "unit-test-query");
  ASSERT_EQ(records[0].events.size(), 1u);
  EXPECT_STREQ(records[0].events[0].name, "obs_test.traced");
  EXPECT_NE(records[0].ToString().find("unit-test-query"),
            std::string::npos);
  collector.Clear();
}

TEST(TraceTest, RingBufferKeepsNewestRecordsOldestFirst) {
  TraceCollector collector;
  collector.Enable(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceRecord record;
    record.label = "q" + std::to_string(i);
    collector.Add(std::move(record));
  }
  const std::vector<TraceRecord> records = collector.Dump();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].label, "q3");
  EXPECT_EQ(records[1].label, "q4");
}

TEST(TraceTest, DisabledCollectorDropsRecords) {
  TraceCollector collector;
  TraceRecord record;
  record.label = "dropped";
  collector.Add(std::move(record));
  EXPECT_TRUE(collector.Dump().empty());
}

TEST(TraceTest, EnableClearsDisablePreservesForDump) {
  TraceCollector collector;
  collector.Enable(4);
  TraceRecord record;
  record.label = "first-run";
  collector.Add(record);
  // Disable stops collection but keeps the resident records readable —
  // the server's Stop path relies on this (a post-shutdown `trace`
  // export would otherwise come back empty).
  collector.Disable();
  record.label = "while-disabled";
  collector.Add(record);
  std::vector<TraceRecord> records = collector.Dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "first-run");
  // Re-enabling starts a fresh collection window.
  collector.Enable(4);
  EXPECT_TRUE(collector.Dump().empty());
  collector.Disable();
}

TEST(TraceTest, EnableMidCollectionResetsTheRing) {
  TraceCollector collector;
  collector.Enable(2);
  for (int i = 0; i < 3; ++i) {
    TraceRecord record;
    record.label = "old" + std::to_string(i);
    collector.Add(std::move(record));
  }
  // Shrinking the capacity mid-flight must not leave stale residents
  // beyond the new bound.
  collector.Enable(1);
  TraceRecord record;
  record.label = "fresh";
  collector.Add(std::move(record));
  const std::vector<TraceRecord> records = collector.Dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "fresh");
  collector.Disable();
}

TEST(TraceTest, RequestTraceStitchesManualStagesAndSpans) {
  RequestTrace trace;
  const auto origin = std::chrono::steady_clock::now();
  // Stages that happened before the worker picked the request up.
  trace.Open("serve", "serve\tu1\tq", /*request_id=*/42,
             origin - std::chrono::microseconds(500));
  ASSERT_TRUE(trace.open());
  trace.AddStage("serve.parse", origin - std::chrono::microseconds(500),
                 origin - std::chrono::microseconds(400));
  {
    PWS_SPAN("obs_test.request_stage");
  }
  const uint64_t total = trace.CloseUs();
  EXPECT_GE(total, 500u);  // At least the backdated origin offset.
  TraceRecord record = trace.Take();
  EXPECT_EQ(record.request_id, 42u);
  EXPECT_STREQ(record.verb, "serve");
  EXPECT_EQ(record.total_us, total);
  ASSERT_EQ(record.events.size(), 2u);
  EXPECT_STREQ(record.events[0].name, "serve.parse");
  EXPECT_EQ(record.events[0].start_us, 0u);
  EXPECT_EQ(record.events[0].duration_us, 100u);
  EXPECT_STREQ(record.events[1].name, "obs_test.request_stage");
  // Spans opened after the backdated origin carry the offset.
  EXPECT_GE(record.events[1].start_us, 400u);
}

TEST(TraceTest, RequestTraceAbsorbsEngineQueryTrace) {
  // The engine opens PWS_QUERY_TRACE around every serve; when the
  // server's request trace is already open on the thread, the engine's
  // must yield so spans stitch into one record — and the sampled ring
  // must not receive a duplicate engine-only record.
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable(8);
  {
    RequestTrace trace;
    trace.Open("serve", "outer", 7, std::chrono::steady_clock::now());
    {
      PWS_QUERY_TRACE("inner-engine-trace");
      PWS_SPAN("obs_test.engine_stage");
    }
    trace.CloseUs();
    TraceRecord record = trace.Take();
    ASSERT_EQ(record.events.size(), 1u);
    EXPECT_STREQ(record.events[0].name, "obs_test.engine_stage");
  }
  EXPECT_TRUE(collector.Dump().empty());
  collector.Disable();
  collector.Clear();
}

TEST(TraceTest, SecondRequestTraceOpenIsANoOp) {
  RequestTrace first;
  first.Open("serve", "first", 1, std::chrono::steady_clock::now());
  RequestTrace second;
  second.Open("click", "second", 2, std::chrono::steady_clock::now());
  EXPECT_FALSE(second.open());
  {
    PWS_SPAN("obs_test.owned_by_first");
  }
  first.CloseUs();
  TraceRecord record = first.Take();
  ASSERT_EQ(record.events.size(), 1u);
  EXPECT_STREQ(record.events[0].name, "obs_test.owned_by_first");
  EXPECT_TRUE(second.Take().events.empty());
}

TEST(TraceTest, GlobalExemplarsIsASeparateRing) {
  TraceCollector& sampled = TraceCollector::Global();
  TraceCollector& exemplars = TraceCollector::GlobalExemplars();
  ASSERT_NE(&sampled, &exemplars);
  exemplars.Enable(2);
  TraceRecord record;
  record.label = "slow-one";
  exemplars.Add(std::move(record));
  EXPECT_TRUE(sampled.Dump().empty());
  ASSERT_EQ(exemplars.Dump().size(), 1u);
  exemplars.Disable();
  exemplars.Clear();
}

// ---------- Exports: Chrome trace JSON and the metrics document -------

TraceRecord MakeRecord(uint64_t id, const char* verb,
                       const std::string& label) {
  TraceRecord record;
  record.label = label;
  record.request_id = id;
  record.verb = verb;
  record.epoch_us = 1000;
  record.total_us = 900;
  record.events.push_back({"serve.parse", 0, 50});
  record.events.push_back({"serve.engine", 100, 700});
  return record;
}

TEST(TraceExportTest, ChromeTraceJsonParsesWithExpectedEvents) {
  std::vector<TraceRecord> records;
  records.push_back(MakeRecord(11, "serve", "serve\tu1\tcafe \"quoted\""));
  records.push_back(MakeRecord(12, "click", "click\tu1\tq\td3"));
  const std::string json = ChromeTraceJson(records);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc)) << json;
  EXPECT_EQ(doc["displayTimeUnit"].String(), "ms");
  const std::vector<JsonValue>& events = doc["traceEvents"].Items();
  // One top-level "request" event plus two stage events per record.
  ASSERT_EQ(events.size(), 6u);
  size_t requests = 0;
  for (const JsonValue& event : events) {
    EXPECT_EQ(event["ph"].String(), "X");
    EXPECT_GE(event["ts"].Number(), 1000.0);  // epoch_us offsets applied.
    if (event["cat"].String() == "request") {
      ++requests;
      EXPECT_EQ(event["args"]["verb"].String(), event["name"].String());
    } else {
      EXPECT_EQ(event["cat"].String(), "stage");
    }
  }
  EXPECT_EQ(requests, 2u);
  // Tab and quote in the label survived escaping into valid JSON.
  EXPECT_NE(json.find("cafe \\\"quoted\\\""), std::string::npos);
}

TEST(TraceExportTest, ExemplarsJsonRoundTripsStageBreakdown) {
  std::vector<TraceRecord> records;
  records.push_back(MakeRecord(99, "train", "train\tu2"));
  JsonValue doc;
  ASSERT_TRUE(ParseJson(ExemplarsJson(records), &doc));
  ASSERT_EQ(doc.Items().size(), 1u);
  const JsonValue& exemplar = doc[0];
  EXPECT_EQ(exemplar["request_id"].Number(), 99.0);
  EXPECT_EQ(exemplar["verb"].String(), "train");
  EXPECT_EQ(exemplar["total_us"].Number(), 900.0);
  ASSERT_EQ(exemplar["stages"].Items().size(), 2u);
  EXPECT_EQ(exemplar["stages"][1]["name"].String(), "serve.engine");
  EXPECT_EQ(exemplar["stages"][1]["dur_us"].Number(), 700.0);
}

TEST(TraceExportTest, GlobalMetricsJsonHasEverySectionAndParses) {
  MetricsRegistry::Global().Reset();
  SloTracker::Global().Reset();
  SloTracker::Config config;
  config.target_us = 1000.0;
  SloTracker::Global().Configure(config);
  const int64_t now = SteadyNowUs();
  MetricsRegistry::Global().GetCounter("obs_test.report.count")->Increment();
  MetricsRegistry::Global()
      .GetWindowedHistogram("obs_test.report.us")
      ->Record(123.0, now);
  SloTracker::Global().RecordRequest(5000.0, /*error=*/false, now);
  TraceCollector& exemplars = TraceCollector::GlobalExemplars();
  exemplars.Enable(2);
  exemplars.Add(MakeRecord(7, "serve", "slow"));
  const std::string json = GlobalMetricsJson(now);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc)) << json;
  for (const char* section : {"counters", "gauges", "histograms",
                              "windowed", "slo", "exemplars"}) {
    EXPECT_TRUE(doc.Has(section)) << section;
  }
  EXPECT_EQ(doc["counters"]["obs_test.report.count"].Number(), 1.0);
  EXPECT_EQ(doc["windowed"]["obs_test.report.us"]["count"].Number(), 1.0);
  EXPECT_TRUE(doc["slo"]["enabled"].Bool());
  EXPECT_EQ(doc["slo"]["window"]["violations"].Number(), 1.0);
  EXPECT_EQ(doc["exemplars"][0]["request_id"].Number(), 7.0);
  exemplars.Disable();
  exemplars.Clear();
  SloTracker::Global().Reset();
  MetricsRegistry::Global().Reset();
}
#endif  // !PWS_OBS_DISABLED

// ---------- Integration: a harness run populates the serve pipeline ----

#if !defined(PWS_OBS_DISABLED)
TEST(ObsIntegrationTest, HarnessRunPopulatesServePipelineMetrics) {
  MetricsRegistry::Global().Reset();

  eval::WorldConfig config;
  config.seed = 17;
  config.num_topics = 6;
  config.corpus.num_documents = 1500;
  config.users.num_users = 3;
  config.queries.queries_per_class = 8;
  config.backend.page_size = 20;
  eval::World world(config);

  eval::SimulationOptions sim;
  sim.seed = 5;
  sim.train_days = 2;
  sim.queries_per_user_day = 3;
  sim.test_queries_per_user = 6;
  sim.ctr_samples_per_impression = 1;
  sim.threads = 2;  // Forces the thread pool so threadpool.* populates.
  const eval::SimulationHarness harness(&world, sim);

  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  (void)harness.RunAveraged(options, 2);

  const RegistrySnapshot snapshot = MetricsRegistry::Global().Snapshot();
  // Per-stage serve latency histograms, all populated.
  for (const char* name :
       {"engine.serve.total.us", "engine.serve.analyze.us",
        "engine.serve.profile_lookup.us", "engine.serve.features.us",
        "engine.serve.rank.us", "engine.observe.total.us",
        "ranksvm.train.us", "harness.run.us"}) {
    ASSERT_EQ(snapshot.histograms.count(name), 1u) << name;
    const HistogramSnapshot& h = snapshot.histograms.at(name);
    EXPECT_GT(h.TotalCount(), 0u) << name;
    EXPECT_GE(h.Percentile(99.0), h.Percentile(50.0)) << name;
  }
  // Every serve consults the cache (Observe and training do too, so
  // lookups can exceed serves, never the reverse).
  const uint64_t hits = snapshot.counters.at("engine.query_cache.hits");
  const uint64_t misses = snapshot.counters.at("engine.query_cache.misses");
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
  EXPECT_GE(hits + misses,
            snapshot.histograms.at("engine.serve.total.us").TotalCount());
  // The parallel harness ran real pool tasks and tracked queue depth.
  EXPECT_GT(snapshot.counters.at("threadpool.tasks"), 0u);
  ASSERT_EQ(snapshot.gauges.count("threadpool.queue_depth"), 1u);
  EXPECT_GT(snapshot.histograms.at("threadpool.task.us").TotalCount(), 0u);
  MetricsRegistry::Global().Reset();
}
#endif  // !PWS_OBS_DISABLED

}  // namespace
}  // namespace pws::obs
