// Hot/cold user-state tiering (DESIGN.md §16): the sharded
// UserStateStore behind PwsEngine must keep resident memory near the
// budget without ever changing results — an evicted user's next touch
// faults bit-identical state back in, whatever order eviction happened
// in, whatever threads were serving meanwhile, and whatever disk fault
// interrupted the spill.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "util/file_util.h"
#include "util/random.h"

namespace pws::core {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 23;
    config.num_topics = 6;
    config.corpus.num_documents = 1500;
    config.users.num_users = 12;
    config.users.gps_fraction = 1.0;
    config.queries.queries_per_class = 8;
    config.backend.page_size = 12;
    world_ = new eval::World(config);
    for (int i = 0; i < 6; ++i) {
      queries_.push_back(world_->queries()[i * 3].text);
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    queries_.clear();
  }

  void TearDown() override { FileFaultInjector::Global().Disarm(); }

  static std::string NewColdDir(const std::string& tag) {
    // EnableTiering truncates stale segments, so reusing a directory
    // across runs is safe by design.
    return ::testing::TempDir() + "/pws_cold_" + tag;
  }

  static std::unique_ptr<PwsEngine> NewEngine(int store_shards) {
    EngineOptions options;
    options.strategy = ranking::Strategy::kCombinedGps;
    options.user_store_shards = store_shards;
    return std::make_unique<PwsEngine>(&world_->search_backend(),
                                       &world_->ontology(), options);
  }

  static click::ClickRecord MakeClick(const PersonalizedPage& page,
                                      int position, double dwell) {
    click::ClickRecord record;
    for (size_t j = 0; j < page.order.size(); ++j) {
      click::Interaction interaction;
      interaction.doc = page.backend_page().results[page.order[j]].doc;
      interaction.rank = static_cast<int>(j);
      if (static_cast<int>(j) == position) {
        interaction.clicked = true;
        interaction.dwell_units = dwell;
        interaction.last_click_in_session = true;
      }
      record.interactions.push_back(interaction);
    }
    return record;
  }

  static void Click(PwsEngine& engine, click::UserId user,
                    const std::string& query, int position, double dwell) {
    const PersonalizedPage page = engine.Serve(user, query);
    ASSERT_GT(page.order.size(), static_cast<size_t>(position));
    engine.Observe(user, page, MakeClick(page, position, dwell));
  }

  /// Everything tiering promises to preserve bit for bit across
  /// evict→reload: rankings, model weights, pair counts, profile top
  /// concepts.
  struct Signature {
    std::vector<std::vector<int>> orders;
    std::vector<std::vector<double>> weights;
    std::vector<int> pair_counts;
    std::vector<std::pair<std::string, double>> top_concepts;

    bool operator==(const Signature& other) const {
      return orders == other.orders && weights == other.weights &&
             pair_counts == other.pair_counts &&
             top_concepts == other.top_concepts;
    }
  };

  static Signature Capture(PwsEngine& engine,
                           const std::vector<click::UserId>& users) {
    Signature signature;
    for (const click::UserId user : users) {
      for (const std::string& query : queries_) {
        signature.orders.push_back(engine.Serve(user, query).order);
      }
      signature.weights.push_back(engine.user_model(user).weights());
      signature.pair_counts.push_back(engine.training_pair_count(user));
      for (const auto& entry :
           engine.user_profile(user).TopContentConcepts(5)) {
        signature.top_concepts.push_back(entry);
      }
    }
    return signature;
  }

  static eval::World* world_;
  static std::vector<std::string> queries_;
};

eval::World* StoreTest::world_ = nullptr;
std::vector<std::string> StoreTest::queries_;

TEST_F(StoreTest, TieringKeepsResidentNearBudgetAndNoUserIsLost) {
  auto engine = NewEngine(/*store_shards=*/4);
  ASSERT_TRUE(engine->EnableTiering(NewColdDir("budget"), 4).ok());
  for (const auto& user : world_->users()) engine->RegisterUser(user.id);
  for (const auto& user : world_->users()) {
    (void)engine->Serve(user.id, queries_[user.id % queries_.size()]);
  }
  UserStateStore::Stats stats = engine->store_stats();
  EXPECT_EQ(stats.total_users, 12);
  // Eviction is shard-local against the global budget, so residency can
  // overshoot transiently but never by more than the shard count (one
  // pinned newcomer per shard).
  EXPECT_LE(stats.resident_users, 4 + engine->store_shard_count());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.spills, 0u);
  EXPECT_EQ(stats.spill_errors, 0u);

  // Every user — resident or cold — is still reachable, and touching
  // the cold ones faults them in.
  for (const auto& user : world_->users()) {
    EXPECT_GE(engine->training_pair_count(user.id), 0);
  }
  stats = engine->store_stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_EQ(stats.fault_errors, 0u);
  EXPECT_EQ(engine->registered_user_count(), 12);
}

TEST_F(StoreTest, EvictReloadIsBitIdenticalAcrossRandomizedEvictionOrders) {
  // Property test: a harshly tiered engine (budget 2, so nearly every
  // touch evicts someone) must stay bit-identical to an all-resident
  // reference through randomized access orders — each trial's shuffled
  // event order produces a different eviction/fault-in history.
  for (const uint64_t trial_seed : {101u, 202u}) {
    auto reference = NewEngine(/*store_shards=*/2);
    auto tiered = NewEngine(/*store_shards=*/2);
    ASSERT_TRUE(
        tiered
            ->EnableTiering(
                NewColdDir("prop" + std::to_string(trial_seed)), 2)
            .ok());
    for (const auto& user : world_->users()) {
      reference->RegisterUser(user.id);
      tiered->RegisterUser(user.id);
      reference->AttachGpsTrace(user.id, user.gps_trace);
      tiered->AttachGpsTrace(user.id, user.gps_trace);
    }

    Random rng(trial_seed);
    for (int round = 0; round < 3; ++round) {
      // Every (user, query) event of the round in random order.
      std::vector<std::pair<click::UserId, int>> events;
      for (const auto& user : world_->users()) {
        for (int q = 0; q < 3; ++q) {
          events.emplace_back(user.id, (q + round) % queries_.size());
        }
      }
      rng.Shuffle(events);
      for (const auto& [user, q] : events) {
        const int position = (user + q) % 3 + 1;
        const double dwell = 90.25 + user * 7.5 + q;
        const PersonalizedPage ref_page =
            reference->Serve(user, queries_[q]);
        const PersonalizedPage tiered_page = tiered->Serve(user, queries_[q]);
        ASSERT_EQ(ref_page.order, tiered_page.order)
            << "trial " << trial_seed << " round " << round << " user "
            << user;
        ASSERT_EQ(ref_page.features, tiered_page.features);
        reference->Observe(user, ref_page,
                           MakeClick(ref_page, position, dwell));
        tiered->Observe(user, tiered_page,
                        MakeClick(tiered_page, position, dwell));
      }
      // Training faults every cold user in, retrains, and the weights
      // must not differ by a single ULP from the all-resident run.
      reference->TrainAllUsers();
      tiered->TrainAllUsers();
      std::vector<click::UserId> ids;
      for (const auto& user : world_->users()) ids.push_back(user.id);
      EXPECT_TRUE(Capture(*reference, ids) == Capture(*tiered, ids))
          << "trial " << trial_seed << " round " << round;
    }

    // The property is vacuous unless eviction actually churned.
    const UserStateStore::Stats stats = tiered->store_stats();
    EXPECT_GT(stats.evictions, 0u) << "trial " << trial_seed;
    EXPECT_GT(stats.faults, 0u) << "trial " << trial_seed;
    EXPECT_EQ(stats.spill_errors, 0u);
    EXPECT_EQ(stats.fault_errors, 0u);
  }
}

TEST_F(StoreTest, ConcurrentServeDuringEvictionMatchesReference) {
  // The TSan exercise for the tiering machinery: many threads Serve
  // overlapping users on a budget small enough that evictions and
  // fault-ins run continuously under the servers' feet. Orders must
  // still match an untired reference (untrained users share priors, so
  // every user's order matches the user-0 reference per query).
  auto tiered = NewEngine(/*store_shards=*/4);
  ASSERT_TRUE(tiered->EnableTiering(NewColdDir("tsan"), 3).ok());
  auto reference = NewEngine(/*store_shards=*/4);
  const int num_users = static_cast<int>(world_->users().size());
  for (const auto& user : world_->users()) {
    tiered->RegisterUser(user.id);
    reference->RegisterUser(user.id);
  }
  std::vector<std::vector<int>> expected(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    expected[q] = reference->Serve(0, queries_[q]).order;
  }

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        for (size_t q = 0; q < queries_.size(); ++q) {
          const click::UserId user = (t + i + static_cast<int>(q)) %
                                     num_users;
          const PersonalizedPage page = tiered->Serve(user, queries_[q]);
          if (page.order != expected[q]) mismatch = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  const UserStateStore::Stats stats = tiered->store_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.faults, 0u);
  EXPECT_EQ(stats.fault_errors, 0u);
  EXPECT_EQ(tiered->registered_user_count(), num_users);
}

TEST_F(StoreTest, EvictionSpillCrashPointSweepNeverLosesState) {
  // Crash-point sweep through the eviction write path: every hooked
  // write during the churn phase below is a cold-record spill. A spill
  // that fails at any boundary — including a torn half-written frame —
  // must leave the victim resident and the engine's results untouched.
  const std::vector<click::UserId> ids = {0, 1, 2, 3, 4, 5};
  const auto drive = [&](PwsEngine& engine) {
    for (const click::UserId user : ids) engine.RegisterUser(user);
    for (int round = 0; round < 3; ++round) {
      for (const click::UserId user : ids) {
        Click(engine, user,
              queries_[(user + round) % queries_.size()],
              (user + round) % 3 + 1, 120.5 + user * 3.25 + round);
      }
    }
  };

  // Reference: the same script on an all-resident engine.
  Signature expected;
  {
    auto reference = NewEngine(/*store_shards=*/1);
    drive(*reference);
    expected = Capture(*reference, ids);
  }

  // Count pass: one shard and budget 2 make the spill sequence
  // deterministic, so every op index is a reproducible crash point.
  int ops = 0;
  {
    auto engine = NewEngine(/*store_shards=*/1);
    ASSERT_TRUE(engine->EnableTiering(NewColdDir("sweep_count"), 2).ok());
    FileFaultInjector::Global().Arm(-1, /*crash=*/false);
    drive(*engine);
    ops = FileFaultInjector::Global().ops_seen();
    FileFaultInjector::Global().Disarm();
    ASSERT_TRUE(Capture(*engine, ids) == expected);
    ASSERT_GT(ops, 0);
  }

  for (int fail_at = 0; fail_at < ops; ++fail_at) {
    auto engine = NewEngine(/*store_shards=*/1);
    ASSERT_TRUE(engine
                    ->EnableTiering(
                        NewColdDir("sweep_" + std::to_string(fail_at)), 2)
                    .ok());
    // Half the sweep tears the frame mid-write (a prefix reaches the
    // segment before the failure) — the torn bytes must never be
    // indexed or faulted back in.
    const double partial = (fail_at % 2 == 0) ? 0.0 : 0.5;
    FileFaultInjector::Global().Arm(fail_at, /*crash=*/false, partial);
    drive(*engine);
    FileFaultInjector::Global().Disarm();
    const UserStateStore::Stats stats = engine->store_stats();
    EXPECT_GE(stats.spill_errors, 1u) << "fail_at " << fail_at;
    EXPECT_EQ(stats.fault_errors, 0u) << "fail_at " << fail_at;
    EXPECT_TRUE(Capture(*engine, ids) == expected)
        << "state diverged after spill failure at op " << fail_at;
  }
}

TEST_F(StoreTest, SessionAndBanditStateBitIdenticalAcrossEvictReload) {
  // The per-user session window and bandit arm statistics live in
  // UserState, so they spill and fault with the rest of it. A budget of
  // 2 across 12 round-robin users means every user's state crosses the
  // cold tier between their own consecutive touches — any bit lost in
  // the SESS/BANDIT round trip shows up as a diverging arm choice,
  // alpha, or session-boosted order vs the all-resident reference.
  EngineOptions options;
  options.strategy = ranking::Strategy::kSession;
  options.bandit.enabled = true;
  options.user_store_shards = 2;
  const auto make_engine = [&] {
    return std::make_unique<PwsEngine>(&world_->search_backend(),
                                       &world_->ontology(), options);
  };
  auto reference = make_engine();
  auto tiered = make_engine();
  ASSERT_TRUE(tiered->EnableTiering(NewColdDir("sessband"), 2).ok());
  for (const auto& user : world_->users()) {
    reference->RegisterUser(user.id);
    tiered->RegisterUser(user.id);
  }
  for (int round = 0; round < 4; ++round) {
    for (const auto& user : world_->users()) {
      const std::string& query =
          queries_[(user.id + round) % queries_.size()];
      const PersonalizedPage ref_page = reference->Serve(user.id, query);
      const PersonalizedPage tiered_page = tiered->Serve(user.id, query);
      ASSERT_EQ(ref_page.bandit_arm, tiered_page.bandit_arm)
          << "round " << round << " user " << user.id;
      ASSERT_EQ(ref_page.alpha_used, tiered_page.alpha_used)
          << "round " << round << " user " << user.id;
      ASSERT_EQ(ref_page.order, tiered_page.order)
          << "round " << round << " user " << user.id;
      const int position = (user.id + round) % 3 + 1;
      const double dwell = 105.5 + user.id * 5.25 + round;
      reference->Observe(user.id, ref_page,
                         MakeClick(ref_page, position, dwell));
      tiered->Observe(user.id, tiered_page,
                      MakeClick(tiered_page, position, dwell));
    }
  }
  // Vacuous unless the tiered run actually churned through the cold
  // tier while sessions and arm stats were live.
  const UserStateStore::Stats stats = tiered->store_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.faults, 0u);
  EXPECT_EQ(stats.spill_errors, 0u);
  EXPECT_EQ(stats.fault_errors, 0u);
}

TEST_F(StoreTest, CorruptColdRecordDegradesToFreshStateNotACrash) {
  // Bit rot in the cold segment: the faulting read fails its checksum,
  // the record is dropped, and the engine's fresh-state fallback keeps
  // the user serving with reset personalization instead of vanishing.
  const std::string cold_dir = NewColdDir("bitrot");
  auto engine = NewEngine(/*store_shards=*/1);
  ASSERT_TRUE(engine->EnableTiering(cold_dir, 2).ok());
  for (click::UserId user = 0; user < 6; ++user) {
    engine->RegisterUser(user);
    Click(*engine, user, queries_[user % queries_.size()], 1,
          150.5 + user);
  }
  // Users 0..3 are now cold (budget 2, single shard). Flip bytes across
  // the whole segment so every cold record fails its CRC.
  const std::string segment = cold_dir + "/shard-0.cold";
  auto contents = ReadFileToString(segment);
  ASSERT_TRUE(contents.ok());
  ASSERT_GT(contents->size(), 0u);
  std::string damaged = *contents;
  for (size_t i = 12; i < damaged.size(); i += 16) damaged[i] ^= 0x5A;
  {
    std::FILE* file = std::fopen(segment.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), file),
              damaged.size());
    std::fclose(file);
  }

  // Touching a cold user must neither crash nor drop them: the state
  // comes back fresh (no training pairs) and keeps serving.
  int reset_users = 0;
  for (click::UserId user = 0; user < 6; ++user) {
    const PersonalizedPage page =
        engine->Serve(user, queries_[user % queries_.size()]);
    EXPECT_FALSE(page.order.empty()) << "user " << user;
    if (engine->training_pair_count(user) == 0) ++reset_users;
  }
  EXPECT_GT(reset_users, 0);
  const UserStateStore::Stats stats = engine->store_stats();
  EXPECT_GT(stats.fault_errors, 0u);
  EXPECT_EQ(engine->registered_user_count(), 6);
}

}  // namespace
}  // namespace pws::core
