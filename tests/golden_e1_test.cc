// Golden equivalence for the E1 pipeline: pins every aggregate metric of
// a small-but-complete simulation run — train days with periodic
// retraining, profile updates from simulated clickthrough, frozen-model
// test phase — for ALL personalization strategies, to bit-exact values.
//
// The values were captured before the learning-loop fast path (term-id
// concept pipeline, flat feature matrices, slab-backed training pairs,
// parallel training) landed, so this test proves the refactor changed
// the machine code but not one bit of the science. Regenerate (only
// after an intentional semantic change) with:
//
//   PWS_GOLDEN_PRINT=1 ./tests/golden_e1_test
//
// and paste the printed rows over kGolden below.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "eval/world.h"
#include "ranking/ranker.h"

namespace pws::eval {
namespace {

// %a renders the exact bits of a double; comparing the strings is
// comparing the doubles bit-for-bit, with readable failure output.
std::string Hex(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

// The 21 aggregates of one strategy's StrategyMetrics, in a fixed order.
std::vector<std::string> Flatten(const StrategyMetrics& m) {
  std::vector<std::string> out;
  out.push_back(Hex(m.avg_rank_relevant));
  out.push_back(Hex(m.mrr));
  out.push_back(Hex(m.ndcg10));
  out.push_back(Hex(m.mean_average_precision));
  for (double p : m.precision_at) out.push_back(Hex(p));
  out.push_back(Hex(m.ctr_at_1));
  for (double r : m.avg_rank_by_class) out.push_back(Hex(r));
  for (double c : m.ctr1_by_class) out.push_back(Hex(c));
  return out;
}

struct GoldenRow {
  ranking::Strategy strategy;
  const char* values[21];
};

// Captured at the seed state of this PR (pre-refactor build). Do not
// edit by hand; see the header comment.
const GoldenRow kGolden[] = {
    // clang-format off
    {ranking::Strategy::kBaseline, {
        "0x1.03bee0324768cp+3",         "0x1.5bee1ee1ee1edp-1",
        "0x1.29c4958c68d24p-1",         "0x1.43e8e55d5a0bbp-1",
        "0x1.3p-1",         "0x1.28p-1",
        "0x1.2aaaaaaaaaaabp-1",         "0x1.1cp-1",
        "0x1.1666666666667p-1",         "0x1.1555555555554p-1",
        "0x1.1b6db6db6db6ep-1",         "0x1.1cp-1",
        "0x1.21c71c71c71c6p-1",         "0x1.24ccccccccccdp-1",
        "0x1.38p-1",         "0x1.0763470c04f63p+3",
        "0x1.6p+2",         "0x1.0eaaaaaaaaaabp+3",
        "0x1.86bca1af286bdp-1",         "0x1p-3",
        "0x1p-1",     }},
    {ranking::Strategy::kContentOnly, {
        "0x1.eaee487e217bcp+2",         "0x1.644fa4fa4fa4fp-1",
        "0x1.3b4760e0339cbp-1",         "0x1.4de4ea43b500bp-1",
        "0x1.3p-1",         "0x1.28p-1",
        "0x1.3555555555555p-1",         "0x1.3p-1",
        "0x1.2999999999999p-1",         "0x1.2aaaaaaaaaaa9p-1",
        "0x1.2b6db6db6db6cp-1",         "0x1.28p-1",
        "0x1.2e38e38e38e38p-1",         "0x1.3p-1",
        "0x1.38p-1",         "0x1.f530607f4b533p+2",
        "0x1.6p+2",         "0x1.f425ed097b427p+2",
        "0x1.86bca1af286bdp-1",         "0x1p-3",
        "0x1p-1",     }},
    {ranking::Strategy::kLocationOnly, {
        "0x1.08520742964b9p+3",         "0x1.6a1041041040fp-1",
        "0x1.2e464899c6632p-1",         "0x1.4547117f3477fp-1",
        "0x1.5p-1",         "0x1.3p-1",
        "0x1.2555555555555p-1",         "0x1.2p-1",
        "0x1.1cccccccccccdp-1",         "0x1.1aaaaaaaaaaabp-1",
        "0x1.2492492492493p-1",         "0x1.28p-1",
        "0x1.2aaaaaaaaaaaap-1",         "0x1.2ccccccccccccp-1",
        "0x1.4p-1",         "0x1.0af64a572c2f7p+3",
        "0x1.5p+3",         "0x1.e5a12f684bdap+2",
        "0x1.79435e50d7943p-1",         "0x1p-3",
        "0x1.38e38e38e38e4p-1",     }},
    {ranking::Strategy::kCombined, {
        "0x1.f76bfb03f4837p+2",         "0x1.6dee1ee1ee1eep-1",
        "0x1.37b1c0fe80e5ep-1",         "0x1.4992f310036a8p-1",
        "0x1.5p-1",         "0x1.38p-1",
        "0x1.3p-1",         "0x1.24p-1",
        "0x1.2000000000001p-1",         "0x1.2aaaaaaaaaaaap-1",
        "0x1.26db6db6db6dap-1",         "0x1.26p-1",
        "0x1.2555555555555p-1",         "0x1.28p-1",
        "0x1.4p-1",         "0x1.0247c62b8b248p+3",
        "0x1.ep+2",         "0x1.e0e38e38e38e4p+2",
        "0x1.79435e50d7943p-1",         "0x1p-3",
        "0x1.38e38e38e38e4p-1",     }},
    {ranking::Strategy::kCombinedGps, {
        "0x1.f234fce968301p+2",         "0x1.779e79e79e79ep-1",
        "0x1.406b2e5c19db7p-1",         "0x1.566dd102be29ap-1",
        "0x1.5p-1",         "0x1.48p-1",
        "0x1.3aaaaaaaaaaabp-1",         "0x1.24p-1",
        "0x1.1cccccccccccdp-1",         "0x1.1d55555555554p-1",
        "0x1.1b6db6db6db6dp-1",         "0x1.22p-1",
        "0x1.271c71c71c71cp-1",         "0x1.24cccccccccccp-1",
        "0x1.48p-1",         "0x1.0d762ef725576p+3",
        "0x1.8p+0",         "0x1.f5a12f684bdap+2",
        "0x1.86bca1af286bdp-1",         "0x1.8p-2",
        "0x1p-1",     }},
    // clang-format on
};

class GoldenE1Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config;
    config.corpus.num_documents = 2000;
    config.users.num_users = 4;
    config.users.gps_fraction = 1.0;
    config.queries.queries_per_class = 8;
    config.backend.page_size = 15;
    world_ = new World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* GoldenE1Test::world_ = nullptr;

TEST_F(GoldenE1Test, AllStrategyMetricsBitIdenticalToSeedCapture) {
  SimulationOptions sim;
  sim.train_days = 4;
  sim.train_every_days = 2;
  sim.queries_per_user_day = 4;
  sim.test_queries_per_user = 8;
  sim.ctr_samples_per_impression = 2;
  SimulationHarness harness(world_, sim);

  const ranking::Strategy strategies[] = {
      ranking::Strategy::kBaseline,      ranking::Strategy::kContentOnly,
      ranking::Strategy::kLocationOnly,  ranking::Strategy::kCombined,
      ranking::Strategy::kCombinedGps,
  };
  std::vector<core::EngineOptions> configs;
  for (ranking::Strategy strategy : strategies) {
    core::EngineOptions options;
    options.strategy = strategy;
    configs.push_back(options);
  }
  const std::vector<StrategyMetrics> results =
      harness.RunMany(configs, nullptr);

  if (std::getenv("PWS_GOLDEN_PRINT") != nullptr) {
    for (size_t s = 0; s < configs.size(); ++s) {
      const auto values = Flatten(results[s]);
      std::printf("    {ranking::Strategy::%s, {\n",
                  [&] {
                    switch (strategies[s]) {
                      case ranking::Strategy::kBaseline: return "kBaseline";
                      case ranking::Strategy::kContentOnly:
                        return "kContentOnly";
                      case ranking::Strategy::kLocationOnly:
                        return "kLocationOnly";
                      case ranking::Strategy::kCombined: return "kCombined";
                      case ranking::Strategy::kCombinedGps:
                        return "kCombinedGps";
                    }
                    return "?";
                  }());
      for (size_t v = 0; v < values.size(); ++v) {
        std::printf("        \"%s\",%s", values[v].c_str(),
                    (v + 1) % 2 == 0 ? "\n" : " ");
      }
      std::printf("    }},\n");
    }
    GTEST_SKIP() << "printed golden rows; paste them into kGolden";
  }

  ASSERT_EQ(std::size(kGolden), configs.size())
      << "golden table does not cover every strategy";
  for (size_t s = 0; s < configs.size(); ++s) {
    EXPECT_EQ(kGolden[s].strategy, strategies[s]);
    const auto values = Flatten(results[s]);
    ASSERT_EQ(values.size(), std::size(kGolden[s].values));
    for (size_t v = 0; v < values.size(); ++v) {
      EXPECT_STREQ(values[v].c_str(), kGolden[s].values[v])
          << "strategy " << ranking::StrategyToString(strategies[s])
          << " metric index " << v;
    }
  }
}

// PR 10 configurations: the in-session boost strategy and the bandit
// blend controller (DESIGN.md §17). Pinned separately so the original
// five-row table above stays byte-for-byte at its seed capture. Same
// regeneration protocol: PWS_GOLDEN_PRINT=1, paste over kGoldenSession.
struct GoldenSessionRow {
  const char* label;
  const char* values[21];
};

const GoldenSessionRow kGoldenSession[] = {
    // clang-format off
    {"session", {
        "0x1.d5a35a35a35a3p+2",         "0x1.7666666666665p-1",
        "0x1.4c75154af1e3ap-1",         "0x1.583dc6020e1eap-1",
        "0x1.5p-1",         "0x1.38p-1",
        "0x1.4555555555555p-1",         "0x1.44p-1",
        "0x1.3cccccccccccdp-1",         "0x1.37ffffffffffep-1",
        "0x1.2fffffffffffep-1",         "0x1.2cp-1",
        "0x1.31c71c71c71c7p-1",         "0x1.2ffffffffffffp-1",
        "0x1.5p-1",         "0x1.edf4737d1cdf4p+2",
        "0x1.cp+1",         "0x1.d8e38e38e38e4p+2",
        "0x1.86bca1af286bdp-1",         "0x1p-2",
        "0x1.38e38e38e38e4p-1",     }},
    {"combined+bandit", {
        "0x1.08e983ed942e9p+3",         "0x1.6c41041041041p-1",
        "0x1.2daf60f6f06a5p-1",         "0x1.40cf60e3bba23p-1",
        "0x1.5p-1",         "0x1.28p-1",
        "0x1.2p-1",         "0x1.1cp-1",
        "0x1.1333333333333p-1",         "0x1.1aaaaaaaaaaaap-1",
        "0x1.2000000000001p-1",         "0x1.22p-1",
        "0x1.238e38e38e38dp-1",         "0x1.28p-1",
        "0x1.4p-1",         "0x1.06d801b6006d8p+3",
        "0x1.7p+3",         "0x1.ecbda12f684bcp+2",
        "0x1.79435e50d7943p-1",         "0x1p-3",
        "0x1.38e38e38e38e4p-1",     }},
    {"session+bandit", {
        "0x1.0546ebe635dadp+3",         "0x1.6ec6980c6980bp-1",
        "0x1.2af7df564806cp-1",         "0x1.457c17878c1fcp-1",
        "0x1.5p-1",         "0x1.38p-1",
        "0x1.2ffffffffffffp-1",         "0x1.2cp-1",
        "0x1.2p-1",         "0x1.22aaaaaaaaaaap-1",
        "0x1.1924924924924p-1",         "0x1.2p-1",
        "0x1.238e38e38e38ep-1",         "0x1.2666666666666p-1",
        "0x1.4p-1",         "0x1.05e04311aa5ep+3",
        "0x1.6p+3",         "0x1.dfb425ed097b5p+2",
        "0x1.79435e50d7943p-1",         "0x1p-3",
        "0x1.38e38e38e38e4p-1",     }},
    // clang-format on
};

TEST_F(GoldenE1Test, SessionAndBanditMetricsBitIdenticalToCapture) {
  SimulationOptions sim;
  sim.train_days = 4;
  sim.train_every_days = 2;
  sim.queries_per_user_day = 4;
  sim.test_queries_per_user = 8;
  sim.ctr_samples_per_impression = 2;
  SimulationHarness harness(world_, sim);

  std::vector<const char*> labels = {"session", "combined+bandit",
                                     "session+bandit"};
  std::vector<core::EngineOptions> configs;
  {
    core::EngineOptions options;
    options.strategy = ranking::Strategy::kSession;
    configs.push_back(options);
  }
  {
    core::EngineOptions options;
    options.strategy = ranking::Strategy::kCombined;
    options.bandit.enabled = true;
    configs.push_back(options);
  }
  {
    core::EngineOptions options;
    options.strategy = ranking::Strategy::kSession;
    options.bandit.enabled = true;
    configs.push_back(options);
  }
  const std::vector<StrategyMetrics> results =
      harness.RunMany(configs, nullptr);

  if (std::getenv("PWS_GOLDEN_PRINT") != nullptr) {
    for (size_t s = 0; s < configs.size(); ++s) {
      const auto values = Flatten(results[s]);
      std::printf("    {\"%s\", {\n", labels[s]);
      for (size_t v = 0; v < values.size(); ++v) {
        std::printf("        \"%s\",%s", values[v].c_str(),
                    (v + 1) % 2 == 0 ? "\n" : " ");
      }
      std::printf("    }},\n");
    }
    GTEST_SKIP() << "printed golden rows; paste them into kGoldenSession";
  }

  ASSERT_EQ(std::size(kGoldenSession), configs.size());
  for (size_t s = 0; s < configs.size(); ++s) {
    EXPECT_STREQ(kGoldenSession[s].label, labels[s]);
    const auto values = Flatten(results[s]);
    ASSERT_EQ(values.size(), std::size(kGoldenSession[s].values));
    for (size_t v = 0; v < values.size(); ++v) {
      EXPECT_STREQ(values[v].c_str(), kGoldenSession[s].values[v])
          << "config " << labels[s] << " metric index " << v;
    }
  }
}

}  // namespace
}  // namespace pws::eval
