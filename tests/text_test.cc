#include <gtest/gtest.h>

#include "text/ngram.h"
#include "text/porter_stemmer.h"
#include "text/stem_cache.h"
#include "text/stopwords.h"
#include "text/tf_idf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace pws::text {
namespace {

// ---------- Stopwords ----------

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_FALSE(IsStopword("hotel"));
  EXPECT_FALSE(IsStopword(""));
  EXPECT_GT(StopwordCount(), 100);
}

// ---------- Tokenizer ----------

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  const auto tokens = Tokenize("Hello, World! 42-times");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
  EXPECT_EQ(tokens[3], "times");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("...!?,").empty());
}

TEST(TokenizerTest, StopwordRemoval) {
  TokenizerOptions options;
  options.remove_stopwords = true;
  const auto tokens = Tokenize("the hotel of the city", options);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hotel");
  EXPECT_EQ(tokens[1], "city");
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions options;
  options.min_token_length = 3;
  const auto tokens = Tokenize("go to big city", options);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "big");
  EXPECT_EQ(tokens[1], "city");
}

TEST(TokenizerTest, StemmingOption) {
  TokenizerOptions options;
  options.stem = true;
  const auto tokens = Tokenize("running hotels", options);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "run");
  EXPECT_EQ(tokens[1], "hotel");
}

TEST(TokenizerTest, TokenizeAppendFusesFieldsWithoutConcatenation) {
  // Tokenizing fields separately into one buffer must equal tokenizing
  // their space-joined concatenation — the invariant the backends rely
  // on to drop `title + " " + body` temporaries.
  const std::string title = "Whistler Ski Resort";
  const std::string body = "powder slopes, lift tickets";
  for (const bool stem : {false, true}) {
    TokenizerOptions options;
    options.stem = stem;
    std::vector<std::string> fused;
    TokenizeAppend(title, options, &fused);
    TokenizeAppend(body, options, &fused);
    EXPECT_EQ(fused, Tokenize(title + " " + body, options));
  }
}

TEST(TokenizerTest, TokenizeAppendDoesNotClearOutput) {
  std::vector<std::string> out = {"pre"};
  TokenizeAppend("a b", TokenizerOptions{}, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "pre");
  EXPECT_EQ(out[1], "a");
  EXPECT_EQ(out[2], "b");
}

TEST(TokenizerTest, StemMemoOffMatchesMemoOn) {
  TokenizerOptions memo;
  memo.stem = true;
  TokenizerOptions direct = memo;
  direct.stem_memo = false;
  const std::string text = "running hotels running cities libraries running";
  EXPECT_EQ(Tokenize(text, memo), Tokenize(text, direct));
}

// ---------- StemCache ----------

TEST(StemCacheTest, MatchesPorterStem) {
  StemCache cache;
  for (const char* word :
       {"running", "hotels", "caresses", "sky", "a", "", "relational"}) {
    EXPECT_EQ(cache.Stem(word), PorterStem(word)) << word;
  }
  // Repeat lookups (now cache hits) still agree.
  EXPECT_EQ(cache.Stem("running"), "run");
  EXPECT_EQ(cache.Stem("hotels"), "hotel");
}

TEST(StemCacheTest, AppendStemAppends) {
  StemCache cache;
  std::string out = "x";
  cache.AppendStem("running", &out);
  EXPECT_EQ(out, "xrun");
}

TEST(StemCacheTest, CountsHitsAndMisses) {
  StemCache cache;
  EXPECT_EQ(cache.Stem("motoring"), "motor");  // miss
  EXPECT_EQ(cache.Stem("motoring"), "motor");  // hit
  EXPECT_EQ(cache.Stem("motoring"), "motor");  // hit
  const StemCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(StemCacheTest, StaysBoundedUnderChurn) {
  StemCache cache(/*capacity=*/64, /*num_shards=*/4);
  for (int i = 0; i < 5000; ++i) {
    const std::string word = "word" + std::to_string(i) + "ing";
    EXPECT_EQ(cache.Stem(word), PorterStem(word));
  }
  const StemCacheStats stats = cache.stats();
  EXPECT_GT(stats.flushes, 0u);
  // Each shard holds at most its share plus the insert that trips it.
  EXPECT_LE(stats.entries, 64u + 4u);
}

// ---------- Porter stemmer ----------

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerTest, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem);
}

// Reference outputs from the original Porter vocabulary.
INSTANTIATE_TEST_SUITE_P(
    Classic, PorterStemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valency", "valenc"}, StemCase{"hesitancy", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformably", "conform"},
        StemCase{"radically", "radic"}, StemCase{"differently", "differ"},
        StemCase{"vileness", "vile"}, StemCase{"analogously", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"formality", "formal"},
        StemCase{"sensitivity", "sensit"}, StemCase{"sensibility", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angularity", "angular"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem(""), "");
}

// ---------- Vocabulary ----------

TEST(VocabularyTest, AssignsDenseIdsInOrder) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0);
  EXPECT_EQ(vocab.GetOrAdd("beta"), 1);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.TermOf(1), "beta");
}

TEST(VocabularyTest, UnknownTermLookup) {
  Vocabulary vocab;
  vocab.GetOrAdd("known");
  EXPECT_EQ(vocab.Get("unknown"), kUnknownTerm);
  const auto ids = vocab.Encode({"known", "unknown"});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], kUnknownTerm);
}

// ---------- N-grams ----------

TEST(NgramTest, Bigrams) {
  const auto grams = ExtractNgrams({"new", "york", "hotel"}, 2);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "new york");
  EXPECT_EQ(grams[1], "york hotel");
}

TEST(NgramTest, TooShortInput) {
  EXPECT_TRUE(ExtractNgrams({"solo"}, 2).empty());
  EXPECT_TRUE(ExtractNgrams({}, 1).empty());
}

TEST(NgramTest, UnigramsAndBigramsCombined) {
  const auto grams = ExtractUnigramsAndBigrams({"a", "b", "c"});
  ASSERT_EQ(grams.size(), 5u);
  EXPECT_EQ(grams[3], "a b");
  EXPECT_EQ(grams[4], "b c");
}

// ---------- TF-IDF ----------

TEST(TfIdfTest, RareTermsGetHigherIdf) {
  // doc0: {0,1}, doc1: {0}, doc2: {0}; term 1 is rarer than term 0.
  TfIdfModel model({{0, 1}, {0}, {0}}, 2);
  EXPECT_GT(model.Idf(1), model.Idf(0));
  EXPECT_EQ(model.num_documents(), 3);
}

TEST(TfIdfTest, UnknownTermGetsMaxIdf) {
  TfIdfModel model({{0}, {0}}, 1);
  EXPECT_GT(model.Idf(999), model.Idf(0));
}

TEST(TfIdfTest, VectorizeAndCosine) {
  TfIdfModel model({{0, 1}, {0, 2}, {0}}, 3);
  const auto a = model.Vectorize({0, 1, 1});
  const auto b = model.Vectorize({0, 2});
  const auto a_again = model.Vectorize({0, 1, 1});
  EXPECT_NEAR(TfIdfModel::Cosine(a, a_again), 1.0, 1e-12);
  const double cross = TfIdfModel::Cosine(a, b);
  EXPECT_GT(cross, 0.0);  // Shares term 0.
  EXPECT_LT(cross, 1.0);
  EXPECT_EQ(TfIdfModel::Cosine(a, {}), 0.0);
}

TEST(TfIdfTest, SkipsUnknownTermIds) {
  TfIdfModel model({{0}}, 1);
  const auto vec = model.Vectorize({0, kUnknownTerm});
  EXPECT_EQ(vec.size(), 1u);
}

}  // namespace
}  // namespace pws::text
