#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baselines/click_history.h"
#include "eval/harness.h"
#include "eval/stats.h"
#include "eval/world.h"

namespace pws::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 5;
    config.corpus.num_documents = 2000;
    config.users.num_users = 4;
    config.queries.queries_per_class = 6;
    config.backend.page_size = 12;
    world_ = new eval::World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static click::ClickRecord ClickAtShownRank(
      const core::PersonalizedPage& page, int rank) {
    click::ClickRecord record;
    record.query_text = page.backend_page().query;
    for (size_t j = 0; j < page.order.size(); ++j) {
      click::Interaction interaction;
      interaction.doc = page.backend_page().results[page.order[j]].doc;
      interaction.rank = static_cast<int>(j);
      if (static_cast<int>(j) == rank) {
        interaction.clicked = true;
        interaction.dwell_units = 300.0;
        interaction.last_click_in_session = true;
      }
      record.interactions.push_back(interaction);
    }
    return record;
  }

  static eval::World* world_;
};

eval::World* BaselinesTest::world_ = nullptr;

TEST_F(BaselinesTest, PClickPromotesPreviouslyClickedDoc) {
  ClickHistoryOptions options;
  ClickHistoryPersonalizer personalizer(&world_->search_backend(), options);
  personalizer.RegisterUser(0);

  const std::string query = "hotel booking";
  auto page = personalizer.Serve(0, query);
  ASSERT_GT(page.order.size(), 5u);
  // Initially backend order.
  for (size_t j = 0; j < page.order.size(); ++j) {
    EXPECT_EQ(page.order[j], static_cast<int>(j));
  }
  const corpus::DocId target = page.backend_page().results[5].doc;

  // Click the doc at shown rank 5 three times.
  for (int i = 0; i < 3; ++i) {
    page = personalizer.Serve(0, query);
    int shown_rank = -1;
    for (size_t j = 0; j < page.order.size(); ++j) {
      if (page.backend_page().results[page.order[j]].doc == target) {
        shown_rank = static_cast<int>(j);
      }
    }
    ASSERT_GE(shown_rank, 0);
    personalizer.Observe(0, page, ClickAtShownRank(page, shown_rank));
  }
  EXPECT_EQ(personalizer.ClickCount(0, query, target), 3);

  page = personalizer.Serve(0, query);
  EXPECT_EQ(page.backend_page().results[page.order[0]].doc, target);
}

TEST_F(BaselinesTest, PClickIsPerUserGClickIsShared) {
  const std::string query = "hotel booking";
  // Personal: user 1's clicks do not affect user 2.
  {
    ClickHistoryOptions options;
    options.mode = ClickHistoryMode::kPersonal;
    ClickHistoryPersonalizer personalizer(&world_->search_backend(), options);
    auto page = personalizer.Serve(1, query);
    personalizer.Observe(1, page, ClickAtShownRank(page, 4));
    const corpus::DocId doc = page.backend_page().results[page.order[4]].doc;
    EXPECT_EQ(personalizer.ClickCount(1, query, doc), 1);
    EXPECT_EQ(personalizer.ClickCount(2, query, doc), 0);
  }
  // Global: they do.
  {
    ClickHistoryOptions options;
    options.mode = ClickHistoryMode::kGlobal;
    ClickHistoryPersonalizer personalizer(&world_->search_backend(), options);
    auto page = personalizer.Serve(1, query);
    personalizer.Observe(1, page, ClickAtShownRank(page, 4));
    const corpus::DocId doc = page.backend_page().results[page.order[4]].doc;
    EXPECT_EQ(personalizer.ClickCount(2, query, doc), 1);
  }
}

TEST_F(BaselinesTest, UnseenQueryKeepsBackendOrder) {
  ClickHistoryPersonalizer personalizer(&world_->search_backend(),
                                        ClickHistoryOptions{});
  personalizer.RegisterUser(0);
  const auto page = personalizer.Serve(0, "restaurant dinner");
  for (size_t j = 0; j < page.order.size(); ++j) {
    EXPECT_EQ(page.order[j], static_cast<int>(j));
  }
}

TEST_F(BaselinesTest, RandomReRankerIsDeterministicPerQuery) {
  RandomReRanker a(&world_->search_backend(), 7);
  RandomReRanker b(&world_->search_backend(), 7);
  RandomReRanker c(&world_->search_backend(), 8);
  const auto pa = a.Serve(0, "hotel booking");
  const auto pb = b.Serve(1, "hotel booking");
  const auto pc = c.Serve(0, "hotel booking");
  EXPECT_EQ(pa.order, pb.order);     // Same seed, user-independent.
  EXPECT_NE(pa.order, pc.order);     // Different seed.
  // Still a permutation.
  std::vector<int> sorted = pa.order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> identity(sorted.size());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(sorted, identity);
}

TEST_F(BaselinesTest, HarnessRunsBaselinePersonalizers) {
  eval::SimulationOptions sim;
  sim.train_days = 2;
  sim.queries_per_user_day = 3;
  sim.test_queries_per_user = 6;
  eval::SimulationHarness harness(world_, sim);
  eval::PersonalizerFactory factory = []() {
    return std::make_unique<ClickHistoryPersonalizer>(
        &world_->search_backend(), ClickHistoryOptions{});
  };
  const auto metrics = harness.RunPersonalizer(factory, false, nullptr);
  EXPECT_EQ(metrics.impressions, 4 * 6);
  EXPECT_GT(metrics.mrr, 0.0);
}

// ---------- Paired stats ----------

TEST(StatsTest, ComparePairedBasics) {
  std::vector<eval::ImpressionOutcome> a(4);
  std::vector<eval::ImpressionOutcome> b(4);
  for (int i = 0; i < 4; ++i) {
    a[i].user = b[i].user = i;
    a[i].query_id = b[i].query_id = 100 + i;
    a[i].reciprocal_rank = 0.5;
    b[i].reciprocal_rank = 0.25;
  }
  a[3].reciprocal_rank = 0.25;  // One tie.
  const auto cmp = ComparePaired(a, b, eval::ReciprocalRankOf);
  EXPECT_EQ(cmp.n, 4);
  EXPECT_EQ(cmp.wins, 3);
  EXPECT_EQ(cmp.losses, 0);
  EXPECT_EQ(cmp.ties, 1);
  EXPECT_NEAR(cmp.mean_a, 0.4375, 1e-12);
  EXPECT_NEAR(cmp.mean_b, 0.25, 1e-12);
  EXPECT_NEAR(cmp.mean_delta, 0.1875, 1e-12);
  EXPECT_GT(cmp.t_statistic, 0.0);
}

TEST(StatsTest, ConstantDeltasGiveZeroT) {
  std::vector<eval::ImpressionOutcome> a(3);
  std::vector<eval::ImpressionOutcome> b(3);
  for (int i = 0; i < 3; ++i) {
    a[i].user = b[i].user = i;
    a[i].query_id = b[i].query_id = i;
    a[i].ndcg10 = 0.7;
    b[i].ndcg10 = 0.7;
  }
  const auto cmp = ComparePaired(a, b, eval::NdcgOf);
  EXPECT_EQ(cmp.ties, 3);
  EXPECT_DOUBLE_EQ(cmp.t_statistic, 0.0);
  EXPECT_DOUBLE_EQ(cmp.stddev_delta, 0.0);
}

TEST(StatsTest, MisalignedListsAbort) {
  std::vector<eval::ImpressionOutcome> a(2);
  std::vector<eval::ImpressionOutcome> b(2);
  a[0].user = 0;
  a[1].user = 1;
  b[0].user = 0;
  b[1].user = 9;  // Misaligned.
  a[0].query_id = a[1].query_id = b[0].query_id = b[1].query_id = 5;
  EXPECT_DEATH(ComparePaired(a, b, eval::ReciprocalRankOf), "align");
}

TEST(StatsTest, EmptyComparison) {
  const auto cmp = ComparePaired({}, {}, eval::ReciprocalRankOf);
  EXPECT_EQ(cmp.n, 0);
  EXPECT_DOUBLE_EQ(cmp.t_statistic, 0.0);
}

}  // namespace
}  // namespace pws::baselines
