// Serving front end: wire protocol codec round trips, and socket-level
// tests of the full server — an ephemeral-port listener driven by real
// client connections, checked for bit-identical rankings against direct
// engine calls, correct click/train plumbing, durable restart, and a
// graceful drain on Stop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket_io.h"
#include "util/json.h"
#include "util/string_util.h"

namespace pws::serve {
namespace {

// Removes a sharded WAL: the bare path (shard 0) plus every possible
// `.s<k>` shard file, so no stale shard records leak into the next run.
void RemoveWalFiles(const std::string& wal_path) {
  std::remove(wal_path.c_str());
  for (int i = 1; i < 64; ++i) {
    std::remove((wal_path + ".s" + std::to_string(i)).c_str());
  }
}

// ---------- Protocol codec ----------

TEST(ProtocolTest, ServeRequestRoundTrips) {
  Request request;
  request.type = RequestType::kServe;
  request.user = 7;
  request.limit = 10;
  request.query = "coffee near pier 39";
  const Request parsed = ParseRequest(FormatRequest(request));
  EXPECT_EQ(parsed.type, RequestType::kServe);
  EXPECT_EQ(parsed.user, 7);
  EXPECT_EQ(parsed.limit, 10);
  EXPECT_EQ(parsed.query, request.query);
}

TEST(ProtocolTest, ClickRequestRoundTrips) {
  Request request;
  request.type = RequestType::kClick;
  request.user = 3;
  request.position = 2;
  request.query = "sushi";
  const Request parsed = ParseRequest(FormatRequest(request));
  EXPECT_EQ(parsed.type, RequestType::kClick);
  EXPECT_EQ(parsed.user, 3);
  EXPECT_EQ(parsed.position, 2);
  EXPECT_EQ(parsed.query, "sushi");
}

TEST(ProtocolTest, QueryKeepsEmbeddedTabs) {
  Request request;
  request.type = RequestType::kServe;
  request.user = 0;
  request.limit = 0;
  request.query = "odd\tquery\twith tabs";
  EXPECT_EQ(ParseRequest(FormatRequest(request)).query, request.query);
}

TEST(ProtocolTest, BareVerbsRoundTrip) {
  for (const RequestType type :
       {RequestType::kTrainAll, RequestType::kSave, RequestType::kMetrics,
        RequestType::kTrace, RequestType::kQueries, RequestType::kPing,
        RequestType::kShutdown}) {
    Request request;
    request.type = type;
    EXPECT_EQ(ParseRequest(FormatRequest(request)).type, type) << static_cast<int>(type);
  }
}

TEST(ProtocolTest, MalformedRequestsParseAsInvalid) {
  for (const char* line :
       {"", "bogus", "serve", "serve\tx\t5\tq", "serve\t1\tfive\tq",
        "serve\t1\t5", "click\t1\t0\tq", "train", "train\tx",
        "train\t1\textra", "ping\textra", "serve\t 1\t5\tq"}) {
    EXPECT_EQ(ParseRequest(line).type, RequestType::kInvalid) << line;
  }
}

TEST(ProtocolTest, RepliesRoundTrip) {
  const Reply ok = ParseReply(FormatOkReply("serve", {"0.5", "1,2,3"}));
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.verb_or_code, "serve");
  ASSERT_EQ(ok.fields.size(), 2u);
  EXPECT_EQ(ok.fields[1], "1,2,3");

  const Reply err = ParseReply(FormatErrReply("overloaded", "queue\nfull"));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.verb_or_code, "overloaded");
  ASSERT_EQ(err.fields.size(), 1u);
  EXPECT_EQ(UnescapeLineBreaks(err.fields[0]), "queue\nfull");

  EXPECT_EQ(ParseReply("gibberish").verb_or_code, "malformed");
  EXPECT_FALSE(ParseReply("gibberish").ok);
}

TEST(ProtocolTest, DocIdsRoundTrip) {
  const std::vector<corpus::DocId> docs = {5, 0, 991, 7};
  std::vector<corpus::DocId> decoded;
  ASSERT_TRUE(DecodeDocIds(EncodeDocIds(docs), &decoded));
  EXPECT_EQ(decoded, docs);
  ASSERT_TRUE(DecodeDocIds("", &decoded));
  EXPECT_TRUE(decoded.empty());
  EXPECT_FALSE(DecodeDocIds("1,x", &decoded));
}

// ---------- Socket-level server ----------

/// Blocking request/reply client over one connection.
class TestClient {
 public:
  explicit TestClient(int port) {
    StatusOr<int> fd = ConnectToLoopback(port);
    if (fd.ok()) channel_ = std::make_unique<LineChannel>(*fd);
  }

  bool connected() const { return channel_ != nullptr; }

  Reply Call(const Request& request) {
    Reply failed;
    failed.verb_or_code = "transport";
    if (channel_ == nullptr) return failed;
    if (!channel_->WriteLine(FormatRequest(request)).ok()) return failed;
    std::string line;
    if (!channel_->ReadLine(&line)) return failed;
    return ParseReply(line);
  }

  Reply Serve(int64_t user, const std::string& query) {
    Request request;
    request.type = RequestType::kServe;
    request.user = user;
    request.query = query;
    return Call(request);
  }

  Reply Click(int64_t user, const std::string& query, int64_t position) {
    Request request;
    request.type = RequestType::kClick;
    request.user = user;
    request.position = position;
    request.query = query;
    return Call(request);
  }

 private:
  std::unique_ptr<LineChannel> channel_;
};

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 23;
    config.num_topics = 6;
    config.corpus.num_documents = 1500;
    config.users.num_users = 4;
    config.queries.queries_per_class = 8;
    config.backend.page_size = 12;
    world_ = new eval::World(config);
    for (int i = 0; i < 6; ++i) {
      queries_.push_back(world_->queries()[i * 2].text);
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    queries_.clear();
  }

  static std::unique_ptr<core::PwsEngine> NewEngine() {
    core::EngineOptions options;
    return std::make_unique<core::PwsEngine>(&world_->search_backend(),
                                             &world_->ontology(), options);
  }

  /// Doc ids of the page `engine` serves directly, in shown order.
  static std::vector<corpus::DocId> DirectServe(core::PwsEngine& engine,
                                                click::UserId user,
                                                const std::string& query) {
    engine.RegisterUser(user);
    const core::PersonalizedPage page = engine.Serve(user, query);
    std::vector<corpus::DocId> docs;
    for (const int backend_index : page.order) {
      docs.push_back(page.backend_page().results[backend_index].doc);
    }
    return docs;
  }

  static eval::World* world_;
  static std::vector<std::string> queries_;
};

eval::World* ServeTest::world_ = nullptr;
std::vector<std::string> ServeTest::queries_;

TEST_F(ServeTest, ServedRankingsAreBitIdenticalToDirectEngineCalls) {
  auto server_engine = NewEngine();
  ServerOptions options;
  options.num_workers = 3;
  PwsServer server(server_engine.get(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // A twin engine, built identically, never touched by the server.
  auto direct_engine = NewEngine();

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (click::UserId user = 0; user < 3; ++user) {
    for (const std::string& query : queries_) {
      const Reply reply = client.Serve(user, query);
      ASSERT_TRUE(reply.ok) << reply.verb_or_code;
      ASSERT_EQ(reply.fields.size(), 2u);
      std::vector<corpus::DocId> served;
      ASSERT_TRUE(DecodeDocIds(reply.fields[1], &served));
      EXPECT_EQ(served, DirectServe(*direct_engine, user, query))
          << "user " << user << " query " << query;
    }
  }
  server.Stop();
}

TEST_F(ServeTest, ClicksObserveAndTrainingStaysBitIdentical) {
  auto server_engine = NewEngine();
  ServerOptions options;
  options.num_workers = 2;
  PwsServer server(server_engine.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto direct_engine = NewEngine();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Same clicks through the socket and directly; then train both ways.
  const click::UserId user = 1;
  direct_engine->RegisterUser(user);
  for (int i = 0; i < 3; ++i) {
    const Reply reply = client.Click(user, queries_[i], /*position=*/2);
    ASSERT_TRUE(reply.ok) << reply.verb_or_code;
    const core::PersonalizedPage page =
        direct_engine->Serve(user, queries_[i]);
    ASSERT_GE(page.order.size(), 2u);
    direct_engine->Observe(user, page,
                           BuildSatisfiedClickRecord(user, page, 2));
  }
  EXPECT_EQ(server_engine->training_pair_count(user),
            direct_engine->training_pair_count(user));
  EXPECT_GT(direct_engine->training_pair_count(user), 0);

  Request train;
  train.type = RequestType::kTrain;
  train.user = user;
  const Reply trained = client.Call(train);
  ASSERT_TRUE(trained.ok);
  direct_engine->TrainUser(user);
  EXPECT_EQ(server_engine->user_model(user).weights(),
            direct_engine->user_model(user).weights());

  // Post-training rankings still match through the socket.
  for (const std::string& query : queries_) {
    const Reply reply = client.Serve(user, query);
    ASSERT_TRUE(reply.ok);
    ASSERT_EQ(reply.fields.size(), 2u);
    std::vector<corpus::DocId> served;
    ASSERT_TRUE(DecodeDocIds(reply.fields[1], &served));
    EXPECT_EQ(served, DirectServe(*direct_engine, user, query)) << query;
  }
  server.Stop();
}

TEST_F(ServeTest, StopDrainsInFlightRequestsAndRepliesToAll) {
  auto engine = NewEngine();
  ServerOptions options;
  options.num_workers = 2;
  PwsServer server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Several clients hammer serves while the main thread stops the
  // server. Every request that got a reply must have gotten a well-
  // formed one (ok or a structured shed/unavailable error) — never a
  // torn line, never a crash.
  std::vector<std::thread> clients;
  std::atomic<int> ok_replies{0};
  std::atomic<int> structured_errors{0};
  std::atomic<int> malformed{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server.port());
      if (!client.connected()) return;
      for (int i = 0; i < 200; ++i) {
        const Reply reply =
            client.Serve(c, queries_[static_cast<size_t>(i) % queries_.size()]);
        if (reply.verb_or_code == "transport") return;  // Drained: EOF.
        if (reply.ok) {
          ++ok_replies;
        } else if (reply.verb_or_code == "malformed") {
          ++malformed;
        } else {
          ++structured_errors;
        }
      }
    });
  }
  // Let some traffic through, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  for (auto& client : clients) client.join();
  EXPECT_GT(ok_replies.load(), 0);
  EXPECT_EQ(malformed.load(), 0);

  // The listener is gone: new connections fail.
  TestClient late(server.port());
  Reply reply = late.Serve(0, queries_[0]);
  EXPECT_FALSE(reply.ok);
}

#if !defined(PWS_OBS_DISABLED)
TEST_F(ServeTest, MetricsVerbReportsWindowedSloAndExemplars) {
  obs::MetricsRegistry::Global().Reset();
  obs::SloTracker::Global().Reset();
  auto engine = NewEngine();
  ServerOptions options;
  options.num_workers = 2;
  options.slo_target_us = 50'000.0;
  options.slo_goal = 0.9;
  options.slow_request_us = 1;  // Everything is an exemplar.
  options.exemplar_capacity = 8;
  PwsServer server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Serve(0, queries_[static_cast<size_t>(i)]).ok);
  }

  Request metrics;
  metrics.type = RequestType::kMetrics;
  const Reply reply = client.Call(metrics);
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(reply.fields.size(), 1u);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(UnescapeLineBreaks(reply.fields[0]), &doc));

  // Satellite gauges: uptime, start timestamp, queue depth + capacity.
  EXPECT_GE(doc["gauges"]["serve.uptime_s"]["value"].Number(), 0.0);
  EXPECT_GT(doc["gauges"]["serve.start_unix_s"]["value"].Number(),
            1'700'000'000.0);  // A sane wall-clock epoch (post-2023).
  EXPECT_EQ(doc["gauges"]["serve.queue_capacity"]["value"].Number(),
            static_cast<double>(options.queue_capacity));
  EXPECT_TRUE(doc["gauges"].Has("serve.queue_depth"));

  // The windowed section carries live per-verb and per-stage views.
  // (>= 3, not == 4: a request's metrics are recorded after its reply
  // is written, so the last serve may not be visible yet.)
  EXPECT_GE(doc["windowed"]["serve.request.serve.us"]["count"].Number(),
            3.0);
  EXPECT_GT(doc["windowed"]["serve.engine.us"]["count"].Number(), 0.0);
  EXPECT_GT(doc["windowed"]["serve.parse.us"]["p50"].Number(), 0.0);

  // SLO accounting saw the traffic.
  EXPECT_TRUE(doc["slo"]["enabled"].Bool());
  EXPECT_DOUBLE_EQ(doc["slo"]["target_us"].Number(), 50'000.0);
  EXPECT_GE(doc["slo"]["total"]["requests"].Number(), 3.0);

  // Every request crossed the 1us threshold, so exemplars are present
  // with per-stage breakdowns.
  const std::vector<JsonValue>& exemplars = doc["exemplars"].Items();
  ASSERT_GT(exemplars.size(), 0u);
  EXPECT_EQ(exemplars.back()["verb"].String(), "serve");
  EXPECT_GT(exemplars.back()["stages"].Items().size(), 0u);

  server.Stop();
  obs::TraceCollector::GlobalExemplars().Clear();
  obs::SloTracker::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
}

TEST_F(ServeTest, TraceVerbExportsParseableChromeTrace) {
  obs::TraceCollector::Global().Clear();
  obs::TraceCollector::GlobalExemplars().Clear();
  auto engine = NewEngine();
  ServerOptions options;
  options.num_workers = 2;
  options.trace_sample_every = 1;  // Trace every request.
  options.trace_capacity = 16;
  PwsServer server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Serve(1, queries_[static_cast<size_t>(i)]).ok);
  }

  Request trace;
  trace.type = RequestType::kTrace;
  const Reply reply = client.Call(trace);
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(reply.fields.size(), 1u);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(UnescapeLineBreaks(reply.fields[0]), &doc));
  EXPECT_EQ(doc["displayTimeUnit"].String(), "ms");
  const std::vector<JsonValue>& events = doc["traceEvents"].Items();
  ASSERT_GT(events.size(), 3u);
  size_t requests = 0;
  bool saw_server_stage = false;
  bool saw_engine_stage = false;
  for (const JsonValue& event : events) {
    EXPECT_EQ(event["ph"].String(), "X");
    if (event["cat"].String() == "request") {
      ++requests;
      EXPECT_GT(event["args"]["request_id"].Number(), 0.0);
    }
    const std::string& name = event["name"].String();
    if (name == "serve.engine") saw_server_stage = true;
    if (name.rfind("engine.serve.", 0) == 0) saw_engine_stage = true;
  }
  // >= 2: a request's trace is pushed to the ring after its reply, so
  // the most recent serve may not have landed yet.
  EXPECT_GE(requests, 2u);
  EXPECT_TRUE(saw_server_stage);
  // Engine spans stitched into the same server-opened records.
  EXPECT_TRUE(saw_engine_stage);

  server.Stop();
  obs::TraceCollector::Global().Clear();
}

// The PR's acceptance check: for a slow request captured as an
// exemplar, the server-stage durations (which bracket the engine call)
// account for the request's measured end-to-end latency to within 10% —
// i.e. the trace explains where the time went, with no unattributed
// gaps beyond scheduling noise.
TEST_F(ServeTest, ExemplarStageDurationsAccountForEndToEndLatency) {
  obs::TraceCollector::Global().Clear();
  obs::TraceCollector::GlobalExemplars().Clear();
  auto engine = NewEngine();
  ServerOptions options;
  options.num_workers = 1;  // No queue contention: latency is stage time.
  options.trace_sample_every = 64;
  options.slow_request_us = 1;  // Every request lands in the exemplars.
  options.exemplar_capacity = 32;
  PwsServer server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Distinct queries so serves miss the engine's query cache and do
  // real multi-millisecond work — scheduling noise then sits far below
  // the 10% tolerance.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Serve(2, queries_[static_cast<size_t>(i)]).ok);
  }
  server.Stop();  // Disables collection; the rings keep their records.

  const std::vector<obs::TraceRecord> records =
      obs::TraceCollector::GlobalExemplars().Dump();
  ASSERT_GE(records.size(), 6u);
  // Judge the slowest serve — the request whose explanation matters.
  const obs::TraceRecord* slowest = nullptr;
  for (const obs::TraceRecord& record : records) {
    if (std::string(record.verb) != "serve") continue;
    if (slowest == nullptr || record.total_us > slowest->total_us) {
      slowest = &record;
    }
  }
  ASSERT_NE(slowest, nullptr);
  ASSERT_GT(slowest->request_id, 0u);
  // Sum the top-level server stages only (serve.*); the engine's own
  // spans are nested inside serve.engine and would double-count.
  uint64_t stage_sum = 0;
  bool saw_engine_span = false;
  for (const obs::TraceEvent& event : slowest->events) {
    const std::string name = event.name;
    if (name.rfind("serve.", 0) == 0) stage_sum += event.duration_us;
    if (name.rfind("engine.", 0) == 0) saw_engine_span = true;
  }
  EXPECT_TRUE(saw_engine_span);  // Stitching held on the slow path.
  ASSERT_GT(slowest->total_us, 0u);
  const double coverage =
      static_cast<double>(stage_sum) /
      static_cast<double>(slowest->total_us);
  EXPECT_GE(coverage, 0.9) << "stages " << stage_sum << "us of "
                           << slowest->total_us << "us end-to-end";
  EXPECT_LE(coverage, 1.1) << slowest->ToString();

  obs::TraceCollector::Global().Clear();
  obs::TraceCollector::GlobalExemplars().Clear();
}
#endif  // !PWS_OBS_DISABLED

TEST_F(ServeTest, ShutdownVerbWakesTheWaiter) {
  auto engine = NewEngine();
  PwsServer server(engine.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.WaitShutdownRequested(/*poll_ms=*/10));
  TestClient client(server.port());
  Request request;
  request.type = RequestType::kShutdown;
  const Reply reply = client.Call(request);
  EXPECT_TRUE(reply.ok);
  // Generous poll: the reply races the flag only by microseconds.
  EXPECT_TRUE(server.WaitShutdownRequested(/*poll_ms=*/5000));
  server.Stop();
}

TEST_F(ServeTest, StateSurvivesServerRestart) {
  const std::string state = ::testing::TempDir() + "/pws_serve_state";
  const std::string wal = state + ".wal";
  std::remove(state.c_str());
  RemoveWalFiles(wal);

  int pairs_before = 0;
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal).ok());
    ASSERT_TRUE(engine->RestoreState(state).ok());
    ServerOptions options;
    options.state_path = state;
    PwsServer server(engine.get(), options);
    ASSERT_TRUE(server.Start().ok());
    TestClient client(server.port());
    ASSERT_TRUE(client.Click(0, queries_[0], 1).ok);
    ASSERT_TRUE(client.Click(0, queries_[1], 2).ok);
    pairs_before = engine->training_pair_count(0);
    EXPECT_GT(pairs_before, 0);
    server.Stop();  // Writes the final snapshot.
  }
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal).ok());
    ASSERT_TRUE(engine->RestoreState(state).ok());
    EXPECT_EQ(engine->training_pair_count(0), pairs_before);
  }
  std::remove(state.c_str());
  RemoveWalFiles(wal);
}

}  // namespace
}  // namespace pws::serve
