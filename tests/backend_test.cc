#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <unordered_map>

#include "backend/inverted_index.h"
#include "backend/search_backend.h"
#include "backend/snippet.h"
#include "corpus/corpus.h"
#include "text/tokenizer.h"

namespace pws::backend {
namespace {

using Tokens = std::vector<std::string>;

corpus::Document MakeDoc(corpus::DocId id, const std::string& title,
                         const std::string& body) {
  corpus::Document doc;
  doc.id = id;
  doc.title = title;
  doc.body = body;
  doc.url = "http://example/" + std::to_string(id);
  doc.topic_mixture_truth = {1.0};
  doc.primary_topic_truth = 0;
  return doc;
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    corpus_.Add(MakeDoc(0, "apple pie", "apple pie recipe with apples"));
    corpus_.Add(MakeDoc(1, "banana bread", "banana bread and banana cake"));
    corpus_.Add(MakeDoc(2, "fruit salad", "apple banana orange fruit mix"));
    corpus_.Add(MakeDoc(3, "empty doc", "zzz"));
    index_ = std::make_unique<InvertedIndex>(&corpus_);
  }

  corpus::Corpus corpus_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexTest, BasicStats) {
  EXPECT_EQ(index_->num_documents(), 4);
  EXPECT_GT(index_->vocabulary_size(), 8);
  EXPECT_GT(index_->average_document_length(), 0.0);
  EXPECT_GT(index_->DocumentLength(0), 0);
}

TEST_F(IndexTest, PostingsReflectOccurrences) {
  const PostingListView apple_view = index_->PostingsFor("apple");
  ASSERT_EQ(apple_view.size(), 2u);  // docs 0 and 2 ("apples" is distinct)
  const auto apple = apple_view.Materialize();
  EXPECT_EQ(apple[0].doc, 0);
  EXPECT_EQ(apple[1].doc, 2);
  EXPECT_GT(apple[0].term_frequency, apple[1].term_frequency);
  EXPECT_TRUE(index_->PostingsFor("nonexistent").empty());
}

TEST_F(IndexTest, TitleTokensAreBoosted) {
  // "pie" appears once in title and once in body of doc 0 -> tf 3 with
  // the x2 title boost.
  const auto pie = index_->PostingsFor("pie").Materialize();
  ASSERT_EQ(pie.size(), 1u);
  EXPECT_EQ(pie[0].term_frequency, 3);
}

TEST_F(IndexTest, CursorWalksPostingsInOrder) {
  const PostingListView view = index_->PostingsFor("apple");
  const auto expected = view.Materialize();
  PostingCursor cursor;
  cursor.Reset(view);
  for (const Posting& p : expected) {
    ASSERT_FALSE(cursor.AtEnd());
    cursor.EnsureLoaded();  // Next() goes shallow across block boundaries
    EXPECT_EQ(cursor.doc(), p.doc);
    EXPECT_EQ(static_cast<int32_t>(cursor.tf()), p.term_frequency);
    cursor.Next();
  }
  EXPECT_TRUE(cursor.AtEnd());
}

TEST_F(IndexTest, TopKRanksMatchingDocsFirst) {
  const auto top = index_->TopK(Tokens{"banana"}, 3, Bm25Params{});
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0], 1);  // Two banana occurrences + title boost.
  EXPECT_EQ(top[1], 2);
}

TEST_F(IndexTest, TopKMultiTermQueryPrefersBothTerms) {
  const auto top = index_->TopK(Tokens{"apple", "banana"}, 4, Bm25Params{});
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0], 2);  // Only doc with both terms.
}

TEST_F(IndexTest, ScoreAgreesWithTopKOrdering) {
  const Tokens q{"apple", "banana"};
  const auto top = index_->TopK(q, 4, Bm25Params{});
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(index_->Score(q, top[i - 1], Bm25Params{}),
              index_->Score(q, top[i], Bm25Params{}));
  }
}

TEST_F(IndexTest, UnknownQueryYieldsNothing) {
  EXPECT_TRUE(index_->TopK(Tokens{"qqqq"}, 5, Bm25Params{}).empty());
  EXPECT_EQ(index_->Score(Tokens{"qqqq"}, 0, Bm25Params{}), 0.0);
}

TEST_F(IndexTest, TopKZeroOrNegativeKIsEmpty) {
  EXPECT_TRUE(index_->TopK(Tokens{"apple"}, 0, Bm25Params{}).empty());
  EXPECT_TRUE(index_->TopK(Tokens{"apple"}, -3, Bm25Params{}).empty());
  const auto analyzed = index_->Analyze("apple");
  EXPECT_TRUE(index_->TopKScored(analyzed.term_ids, 0, Bm25Params{}).empty());
}

TEST_F(IndexTest, EmptyQueryIsEmpty) {
  const auto analyzed = index_->Analyze("");
  EXPECT_TRUE(analyzed.tokens.empty());
  EXPECT_TRUE(analyzed.term_ids.empty());
  EXPECT_TRUE(index_->TopKScored(analyzed.term_ids, 5, Bm25Params{}).empty());
  EXPECT_EQ(index_->Score(analyzed.term_ids, 0, Bm25Params{}), 0.0);
}

TEST_F(IndexTest, UnknownTermOnlyQueryIsEmpty) {
  const auto analyzed = index_->Analyze("qqqq wwww");
  ASSERT_EQ(analyzed.term_ids.size(), 2u);
  EXPECT_EQ(analyzed.term_ids[0], text::kUnknownTerm);
  EXPECT_EQ(analyzed.term_ids[1], text::kUnknownTerm);
  EXPECT_TRUE(index_->TopKScored(analyzed.term_ids, 5, Bm25Params{}).empty());
}

TEST_F(IndexTest, AnalyzeAlignsTokensAndIds) {
  const auto analyzed = index_->Analyze("Apple qqqq banana");
  EXPECT_EQ(analyzed.query, "Apple qqqq banana");
  ASSERT_EQ(analyzed.tokens.size(), 3u);
  ASSERT_EQ(analyzed.term_ids.size(), 3u);
  EXPECT_EQ(analyzed.tokens[0], "apple");
  EXPECT_NE(analyzed.term_ids[0], text::kUnknownTerm);
  EXPECT_EQ(analyzed.term_ids[1], text::kUnknownTerm);
  EXPECT_NE(analyzed.term_ids[2], text::kUnknownTerm);
}

TEST_F(IndexTest, DuplicateTokensContributeOnce) {
  // {a, a} scores and ranks identically to {a}: Score and TopK share
  // distinct-term (set) semantics.
  const Tokens once{"banana"};
  const Tokens twice{"banana", "banana"};
  for (corpus::DocId doc = 0; doc < 4; ++doc) {
    EXPECT_EQ(index_->Score(twice, doc, Bm25Params{}),
              index_->Score(once, doc, Bm25Params{}));
  }
  EXPECT_EQ(index_->TopK(twice, 4, Bm25Params{}),
            index_->TopK(once, 4, Bm25Params{}));

  const Tokens mixed{"apple", "banana", "apple"};
  const Tokens dedup{"apple", "banana"};
  for (corpus::DocId doc = 0; doc < 4; ++doc) {
    EXPECT_EQ(index_->Score(mixed, doc, Bm25Params{}),
              index_->Score(dedup, doc, Bm25Params{}));
  }
  EXPECT_EQ(index_->TopK(mixed, 4, Bm25Params{}),
            index_->TopK(dedup, 4, Bm25Params{}));
}

// ---------- Golden equivalence: term-id fast path vs reference ----------

/// Reference BM25 scorer: the pre-fast-path implementation — string-keyed
/// postings lookups and an unordered_map<doc, score> accumulator — with
/// the same distinct-term semantics. Scores every matching doc, sorts by
/// (score desc, doc asc), truncates to k.
std::vector<ScoredDoc> ReferenceTopK(const InvertedIndex& index,
                                     const Tokens& query_tokens, int k,
                                     const Bm25Params& params) {
  std::vector<std::string> distinct;
  for (const auto& t : query_tokens) {
    if (std::find(distinct.begin(), distinct.end(), t) == distinct.end()) {
      distinct.push_back(t);
    }
  }
  std::unordered_map<corpus::DocId, double> acc;
  const int n = index.num_documents();
  for (const auto& term : distinct) {
    const auto postings = index.PostingsFor(term).Materialize();
    if (postings.empty()) continue;
    const double df = static_cast<double>(postings.size());
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const auto& p : postings) {
      const double tf = p.term_frequency;
      const double norm =
          params.k1 * (1.0 - params.b +
                       params.b * index.DocumentLength(p.doc) /
                           index.average_document_length());
      acc[p.doc] += idf * tf * (params.k1 + 1.0) / (tf + norm);
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back({doc, score});
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (static_cast<int>(out.size()) > k) out.resize(k);
  return out;
}

/// A seeded corpus over a tiny word pool, so many docs share terms and
/// exact score ties (identical token multisets) are common.
corpus::Corpus MakeSeededCorpus(int num_docs, uint64_t seed) {
  const Tokens pool = {"alpha", "beta",  "gamma", "delta", "epsi",
                       "zeta",  "eta",   "theta", "iota",  "kappa",
                       "lake",  "tower", "park",  "museum"};
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> body_len(3, 12);
  corpus::Corpus corpus;
  for (int d = 0; d < num_docs; ++d) {
    std::string title = pool[pick(rng)] + " " + pool[pick(rng)];
    std::string body;
    const int len = body_len(rng);
    for (int t = 0; t < len; ++t) {
      if (t > 0) body += ' ';
      body += pool[pick(rng)];
    }
    // A sprinkling of heavy-tf docs gives block maxima real variance —
    // without it every block's max contribution is identical and
    // block-max pruning has nothing to skip.
    if (d % 7 == 3) {
      const std::string& heavy = pool[pick(rng)];
      const int reps = 8 + static_cast<int>(pick(rng));
      for (int r = 0; r < reps; ++r) {
        body += ' ';
        body += heavy;
      }
    }
    // Every 5th doc duplicates the previous one's text: guaranteed exact
    // score ties, exercising the doc-id tie-break.
    if (d % 5 == 4 && d > 0) {
      const corpus::Document& prev = corpus.doc(d - 1);
      title = prev.title;
      body = prev.body;
    }
    corpus.Add(MakeDoc(d, title, body));
  }
  return corpus;
}

TEST(GoldenEquivalenceTest, FastPathMatchesReferenceScorer) {
  corpus::Corpus corpus = MakeSeededCorpus(80, /*seed=*/1234);
  InvertedIndex index(&corpus);

  const std::vector<Tokens> queries = {
      {"alpha"},
      {"alpha", "beta"},
      {"lake", "tower", "park"},
      {"theta", "theta"},            // duplicate tokens
      {"alpha", "unknownzz"},        // known + unknown
      {"unknownzz"},                 // unknown only
      {"epsi", "zeta", "eta", "iota", "kappa"},
  };
  const std::vector<int> ks = {1, 3, 10, 80, 200};
  const std::vector<Bm25Params> params_set = {
      Bm25Params{},            // matches the precomputed tables
      Bm25Params{0.9, 0.4},    // forces the untabled fallback
  };

  for (const auto& params : params_set) {
    for (const auto& q : queries) {
      const auto analyzed_ids = [&] {
        std::string joined;
        for (const auto& t : q) {
          if (!joined.empty()) joined += ' ';
          joined += t;
        }
        return index.Analyze(joined).term_ids;
      }();
      for (int k : ks) {
        const auto expected = ReferenceTopK(index, q, k, params);
        const auto got = index.TopKScored(analyzed_ids, k, params);
        ASSERT_EQ(got.size(), expected.size())
            << "k=" << k << " query[0]=" << q[0];
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].doc, expected[i].doc) << "rank " << i;
          // Bit-identical, not just approximately equal: the fast path
          // evaluates the same expressions in the same order.
          EXPECT_EQ(got[i].score, expected[i].score) << "rank " << i;
          EXPECT_EQ(index.Score(analyzed_ids, got[i].doc, params),
                    got[i].score)
              << "rank " << i;
        }
        // Both explicit top-k paths must agree with the dispatcher —
        // exhaustive bit-identically (same accumulator), block-max as the
        // exact same set and scores (pruning is provably lossless).
        for (const auto& path :
             {index.TopKScoredExhaustive(analyzed_ids, k, params),
              index.TopKScoredBlockMax(analyzed_ids, k, params)}) {
          ASSERT_EQ(path.size(), got.size()) << "k=" << k;
          for (size_t i = 0; i < path.size(); ++i) {
            EXPECT_EQ(path[i].doc, got[i].doc) << "rank " << i;
            EXPECT_EQ(path[i].score, got[i].score) << "rank " << i;
          }
        }
      }
    }
  }
}

// Multi-block lists (2000 docs over a 14-word pool => every term's list
// spans several 128-doc blocks): block-max pruning must actually skip
// blocks and still return the exact exhaustive results.
TEST(GoldenEquivalenceTest, BlockMaxIsExactOnMultiBlockLists) {
  corpus::Corpus corpus = MakeSeededCorpus(2000, /*seed=*/99);
  InvertedIndex index(&corpus);

  const IndexStats stats = index.Stats();
  EXPECT_EQ(stats.documents, 2000u);
  EXPECT_GT(stats.blocks, stats.terms);  // multi-block lists exist
  EXPECT_LT(stats.BytesPerPosting(), 8.0);

  const std::vector<Tokens> queries = {
      {"alpha"},
      {"alpha", "beta"},
      {"lake", "tower", "park"},
      {"epsi", "zeta", "eta", "iota", "kappa"},
  };
  uint64_t total_skipped = 0;
  for (const auto& q : queries) {
    std::string joined;
    for (const auto& t : q) {
      if (!joined.empty()) joined += ' ';
      joined += t;
    }
    const auto ids = index.Analyze(joined).term_ids;
    for (int k : {1, 5, 10, 100, 2000}) {
      const auto exhaustive = index.TopKScoredExhaustive(ids, k, Bm25Params{});
      RetrievalStats stats_bm;
      const auto block_max =
          index.TopKScoredBlockMax(ids, k, Bm25Params{}, &stats_bm);
      ASSERT_EQ(block_max.size(), exhaustive.size())
          << "k=" << k << " q=" << joined;
      for (size_t i = 0; i < block_max.size(); ++i) {
        ASSERT_EQ(block_max[i].doc, exhaustive[i].doc)
            << "rank " << i << " k=" << k << " q=" << joined;
        ASSERT_EQ(block_max[i].score, exhaustive[i].score)
            << "rank " << i << " k=" << k << " q=" << joined;
      }
      if (k <= 10) total_skipped += stats_bm.blocks_skipped;
    }
  }
  // Small-k queries over multi-block lists must prune something, or the
  // block-max machinery is dead weight.
  EXPECT_GT(total_skipped, 0u);
}

// The dispatcher's fallback: params that do not match the precomputed
// tables must route block-max requests to the exhaustive path (block
// maxima only bound tabled scores) and still be exact.
TEST(GoldenEquivalenceTest, BlockMaxFallsBackOnUntabledParams) {
  corpus::Corpus corpus = MakeSeededCorpus(600, /*seed=*/7);
  InvertedIndex index(&corpus);
  const auto ids = index.Analyze("alpha beta lake").term_ids;
  const Bm25Params untabled{0.9, 0.4};
  RetrievalStats stats;
  const auto got = index.TopKScoredBlockMax(ids, 10, untabled, &stats);
  const auto expected = index.TopKScoredExhaustive(ids, 10, untabled);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, expected[i].doc);
    EXPECT_EQ(got[i].score, expected[i].score);
  }
  EXPECT_EQ(stats.blocks_skipped, 0u);  // fallback decodes everything
}

TEST(GoldenEquivalenceTest, TieBreakIsDocIdAscending) {
  corpus::Corpus corpus;
  // Four identical docs: all scores tie exactly.
  for (int d = 0; d < 4; ++d) {
    corpus.Add(MakeDoc(d, "same title", "same body words here"));
  }
  InvertedIndex index(&corpus);
  const auto analyzed = index.Analyze("same words");
  const auto top = index.TopKScored(analyzed.term_ids, 3, Bm25Params{});
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].doc, 0);
  EXPECT_EQ(top[1].doc, 1);
  EXPECT_EQ(top[2].doc, 2);
  EXPECT_EQ(top[0].score, top[1].score);
  EXPECT_EQ(top[1].score, top[2].score);
}

// ---------- Snippets ----------

TEST(SnippetTest, ShortBodyReturnedWhole) {
  SnippetOptions options;
  options.window_tokens = 30;
  EXPECT_EQ(MakeSnippet("just a few words", {"few"}, options),
            "just a few words");
}

TEST(SnippetTest, WindowCoversQueryTerms) {
  SnippetOptions options;
  options.window_tokens = 5;
  std::string body = "aaa bbb ccc ddd eee target1 xxx target2 yyy zzz www";
  const std::string snippet =
      MakeSnippet(body, {"target1", "target2"}, options);
  EXPECT_NE(snippet.find("target1"), std::string::npos);
  EXPECT_NE(snippet.find("target2"), std::string::npos);
  EXPECT_EQ(text::Tokenize(snippet).size(), 5u);
}

TEST(SnippetTest, NoQueryMatchFallsBackToPrefix) {
  SnippetOptions options;
  options.window_tokens = 3;
  EXPECT_EQ(MakeSnippet("one two three four five", {"absent"}, options),
            "one two three");
}

TEST(SnippetTest, EmptyBody) {
  EXPECT_EQ(MakeSnippet("", {"x"}, SnippetOptions{}), "");
}

TEST(SnippetTest, DuplicateQueryTokensDoNotSkewWindow) {
  SnippetOptions options;
  options.window_tokens = 3;
  // "one one" as the query must behave like "one": the window containing
  // the two distinct-hit tokens ("one two") must win over a window with
  // "one" alone even if the query lists "one" twice.
  const std::string body = "zzz one yyy xxx one two";
  EXPECT_EQ(MakeSnippet(body, {"one", "one", "two"}, options),
            MakeSnippet(body, {"one", "two"}, options));
}

// ---------- SearchBackend ----------

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() {
    corpus_.Add(MakeDoc(0, "ski resort whistler",
                        "whistler ski resort powder slopes lift whistler"));
    corpus_.Add(MakeDoc(1, "ski gear", "ski snowboard gear shop bindings"));
    corpus_.Add(MakeDoc(2, "beach holiday", "sunny beach sand waves resort"));
    SearchBackendOptions options;
    options.page_size = 2;
    backend_ = std::make_unique<SearchBackend>(&corpus_, options);
  }

  corpus::Corpus corpus_;
  std::unique_ptr<SearchBackend> backend_;
};

TEST_F(BackendTest, ReturnsRankedPage) {
  const ResultPage page = backend_->Search("ski whistler");
  ASSERT_EQ(page.results.size(), 2u);
  EXPECT_EQ(page.query, "ski whistler");
  EXPECT_EQ(page.results[0].doc, 0);
  EXPECT_EQ(page.results[0].rank, 0);
  EXPECT_EQ(page.results[1].rank, 1);
  EXPECT_GE(page.results[0].score, page.results[1].score);
  EXPECT_FALSE(page.results[0].snippet.empty());
  EXPECT_FALSE(page.results[0].title.empty());
  EXPECT_FALSE(page.results[0].url.empty());
}

TEST_F(BackendTest, ExplicitKOverridesPageSize) {
  EXPECT_EQ(backend_->Search("ski", 1).results.size(), 1u);
  EXPECT_EQ(backend_->Search("resort", 10).results.size(), 2u);
}

TEST_F(BackendTest, EmptyQueryYieldsEmptyPage) {
  EXPECT_TRUE(backend_->Search("").results.empty());
  EXPECT_TRUE(backend_->Search("???").results.empty());
}

TEST_F(BackendTest, DeterministicResults) {
  const auto a = backend_->Search("ski resort");
  const auto b = backend_->Search("ski resort");
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].doc, b.results[i].doc);
  }
}

TEST_F(BackendTest, PreAnalyzedSearchMatchesStringSearch) {
  const AnalyzedQuery analyzed = backend_->Analyze("ski resort");
  const ResultPage via_analyzed = backend_->Search(analyzed);
  const ResultPage via_string = backend_->Search("ski resort");
  ASSERT_EQ(via_analyzed.results.size(), via_string.results.size());
  for (size_t i = 0; i < via_analyzed.results.size(); ++i) {
    EXPECT_EQ(via_analyzed.results[i].doc, via_string.results[i].doc);
    EXPECT_EQ(via_analyzed.results[i].score, via_string.results[i].score);
    EXPECT_EQ(via_analyzed.results[i].snippet, via_string.results[i].snippet);
  }
}

TEST_F(BackendTest, ResultScoresMatchIndexScore) {
  const AnalyzedQuery analyzed = backend_->Analyze("ski resort");
  const ResultPage page = backend_->Search(analyzed);
  // The fixture uses default Bm25Params.
  for (const auto& r : page.results) {
    EXPECT_EQ(backend_->index().Score(analyzed.term_ids, r.doc, Bm25Params{}),
              r.score);
  }
}

}  // namespace
}  // namespace pws::backend
