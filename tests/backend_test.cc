#include <gtest/gtest.h>

#include "backend/inverted_index.h"
#include "backend/search_backend.h"
#include "backend/snippet.h"
#include "corpus/corpus.h"
#include "text/tokenizer.h"

namespace pws::backend {
namespace {

corpus::Document MakeDoc(corpus::DocId id, const std::string& title,
                         const std::string& body) {
  corpus::Document doc;
  doc.id = id;
  doc.title = title;
  doc.body = body;
  doc.url = "http://example/" + std::to_string(id);
  doc.topic_mixture_truth = {1.0};
  doc.primary_topic_truth = 0;
  return doc;
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    corpus_.Add(MakeDoc(0, "apple pie", "apple pie recipe with apples"));
    corpus_.Add(MakeDoc(1, "banana bread", "banana bread and banana cake"));
    corpus_.Add(MakeDoc(2, "fruit salad", "apple banana orange fruit mix"));
    corpus_.Add(MakeDoc(3, "empty doc", "zzz"));
    index_ = std::make_unique<InvertedIndex>(&corpus_);
  }

  corpus::Corpus corpus_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexTest, BasicStats) {
  EXPECT_EQ(index_->num_documents(), 4);
  EXPECT_GT(index_->vocabulary_size(), 8);
  EXPECT_GT(index_->average_document_length(), 0.0);
  EXPECT_GT(index_->DocumentLength(0), 0);
}

TEST_F(IndexTest, PostingsReflectOccurrences) {
  const auto& apple = index_->PostingsFor("apple");
  ASSERT_EQ(apple.size(), 2u);  // docs 0 and 2 ("apples" is a distinct term)
  EXPECT_EQ(apple[0].doc, 0);
  EXPECT_EQ(apple[1].doc, 2);
  EXPECT_GT(apple[0].term_frequency, apple[1].term_frequency);
  EXPECT_TRUE(index_->PostingsFor("nonexistent").empty());
}

TEST_F(IndexTest, TitleTokensAreBoosted) {
  // "pie" appears once in title and once in body of doc 0 -> tf 3 with
  // the x2 title boost.
  const auto& pie = index_->PostingsFor("pie");
  ASSERT_EQ(pie.size(), 1u);
  EXPECT_EQ(pie[0].term_frequency, 3);
}

TEST_F(IndexTest, TopKRanksMatchingDocsFirst) {
  const auto top = index_->TopK({"banana"}, 3, Bm25Params{});
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0], 1);  // Two banana occurrences + title boost.
  EXPECT_EQ(top[1], 2);
}

TEST_F(IndexTest, TopKMultiTermQueryPrefersBothTerms) {
  const auto top = index_->TopK({"apple", "banana"}, 4, Bm25Params{});
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0], 2);  // Only doc with both terms.
}

TEST_F(IndexTest, ScoreAgreesWithTopKOrdering) {
  const auto top = index_->TopK({"apple", "banana"}, 4, Bm25Params{});
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(index_->Score({"apple", "banana"}, top[i - 1], Bm25Params{}),
              index_->Score({"apple", "banana"}, top[i], Bm25Params{}));
  }
}

TEST_F(IndexTest, UnknownQueryYieldsNothing) {
  EXPECT_TRUE(index_->TopK({"qqqq"}, 5, Bm25Params{}).empty());
  EXPECT_EQ(index_->Score({"qqqq"}, 0, Bm25Params{}), 0.0);
}

// ---------- Snippets ----------

TEST(SnippetTest, ShortBodyReturnedWhole) {
  SnippetOptions options;
  options.window_tokens = 30;
  EXPECT_EQ(MakeSnippet("just a few words", {"few"}, options),
            "just a few words");
}

TEST(SnippetTest, WindowCoversQueryTerms) {
  SnippetOptions options;
  options.window_tokens = 5;
  std::string body = "aaa bbb ccc ddd eee target1 xxx target2 yyy zzz www";
  const std::string snippet =
      MakeSnippet(body, {"target1", "target2"}, options);
  EXPECT_NE(snippet.find("target1"), std::string::npos);
  EXPECT_NE(snippet.find("target2"), std::string::npos);
  EXPECT_EQ(text::Tokenize(snippet).size(), 5u);
}

TEST(SnippetTest, NoQueryMatchFallsBackToPrefix) {
  SnippetOptions options;
  options.window_tokens = 3;
  EXPECT_EQ(MakeSnippet("one two three four five", {"absent"}, options),
            "one two three");
}

TEST(SnippetTest, EmptyBody) {
  EXPECT_EQ(MakeSnippet("", {"x"}, SnippetOptions{}), "");
}

// ---------- SearchBackend ----------

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() {
    corpus_.Add(MakeDoc(0, "ski resort whistler",
                        "whistler ski resort powder slopes lift whistler"));
    corpus_.Add(MakeDoc(1, "ski gear", "ski snowboard gear shop bindings"));
    corpus_.Add(MakeDoc(2, "beach holiday", "sunny beach sand waves resort"));
    SearchBackendOptions options;
    options.page_size = 2;
    backend_ = std::make_unique<SearchBackend>(&corpus_, options);
  }

  corpus::Corpus corpus_;
  std::unique_ptr<SearchBackend> backend_;
};

TEST_F(BackendTest, ReturnsRankedPage) {
  const ResultPage page = backend_->Search("ski whistler");
  ASSERT_EQ(page.results.size(), 2u);
  EXPECT_EQ(page.query, "ski whistler");
  EXPECT_EQ(page.results[0].doc, 0);
  EXPECT_EQ(page.results[0].rank, 0);
  EXPECT_EQ(page.results[1].rank, 1);
  EXPECT_GE(page.results[0].score, page.results[1].score);
  EXPECT_FALSE(page.results[0].snippet.empty());
  EXPECT_FALSE(page.results[0].title.empty());
  EXPECT_FALSE(page.results[0].url.empty());
}

TEST_F(BackendTest, ExplicitKOverridesPageSize) {
  EXPECT_EQ(backend_->Search("ski", 1).results.size(), 1u);
  EXPECT_EQ(backend_->Search("resort", 10).results.size(), 2u);
}

TEST_F(BackendTest, EmptyQueryYieldsEmptyPage) {
  EXPECT_TRUE(backend_->Search("").results.empty());
  EXPECT_TRUE(backend_->Search("???").results.empty());
}

TEST_F(BackendTest, DeterministicResults) {
  const auto a = backend_->Search("ski resort");
  const auto b = backend_->Search("ski resort");
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].doc, b.results[i].doc);
  }
}

}  // namespace
}  // namespace pws::backend
