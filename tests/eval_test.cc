#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/world.h"

namespace pws::eval {
namespace {

using click::RelevanceGrade;

constexpr RelevanceGrade kIrr = RelevanceGrade::kIrrelevant;
constexpr RelevanceGrade kRel = RelevanceGrade::kRelevant;
constexpr RelevanceGrade kHigh = RelevanceGrade::kHighlyRelevant;

// ---------- Metrics ----------

TEST(MetricsTest, AverageRankOfRelevant) {
  // Relevant at 1-based ranks 1 and 4 -> mean 2.5.
  const auto rank = AverageRankOfRelevant({kRel, kIrr, kIrr, kHigh});
  ASSERT_TRUE(rank.has_value());
  EXPECT_DOUBLE_EQ(*rank, 2.5);
  EXPECT_FALSE(AverageRankOfRelevant({kIrr, kIrr}).has_value());
  EXPECT_FALSE(AverageRankOfRelevant({}).has_value());
}

class PrecisionAtKTest : public ::testing::TestWithParam<int> {};

TEST_P(PrecisionAtKTest, CountsRelevantPrefix) {
  const int k = GetParam();
  // Grades: R I H I R -> relevant at positions 1, 3, 5.
  const GradeList grades = {kRel, kIrr, kHigh, kIrr, kRel};
  const int relevant_in_prefix[] = {1, 1, 2, 2, 3};
  const int expected = relevant_in_prefix[std::min(k, 5) - 1];
  EXPECT_DOUBLE_EQ(PrecisionAtK(grades, k),
                   static_cast<double>(expected) / k);
}

INSTANTIATE_TEST_SUITE_P(Ks, PrecisionAtKTest, ::testing::Range(1, 11));

TEST(MetricsTest, RecallAtK) {
  const GradeList grades = {kRel, kIrr, kHigh, kIrr, kRel};
  EXPECT_DOUBLE_EQ(RecallAtK(grades, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(grades, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(grades, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({kIrr}, 3), 0.0);
}

TEST(MetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({kIrr, kIrr, kRel}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({kHigh}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({kIrr, kIrr}), 0.0);
}

TEST(MetricsTest, NdcgPerfectOrderingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgAtK({kHigh, kRel, kIrr}, 3), 1.0);
}

TEST(MetricsTest, NdcgWorseOrderingBelowOne) {
  const double reversed = NdcgAtK({kIrr, kRel, kHigh}, 3);
  EXPECT_GT(reversed, 0.0);
  EXPECT_LT(reversed, 1.0);
  EXPECT_LT(reversed, NdcgAtK({kHigh, kIrr, kRel}, 3));
}

TEST(MetricsTest, NdcgAllIrrelevantIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({kIrr, kIrr}, 10), 0.0);
}

TEST(MetricsTest, NdcgKnownValue) {
  // DCG = 3/log2(2) + 1/log2(3) ; IDCG is the same (already ideal).
  EXPECT_DOUBLE_EQ(NdcgAtK({kHigh, kRel}, 2), 1.0);
  // Swapped: DCG = 1/1 + 3/log2(3); IDCG = 3/1 + 1/log2(3).
  const double dcg = 1.0 + 3.0 / std::log2(3.0);
  const double idcg = 3.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({kRel, kHigh}, 2), dcg / idcg, 1e-12);
}


TEST(MetricsTest, AveragePrecisionKnownValues) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision({kRel, kIrr, kHigh}), (1.0 + 2.0 / 3.0) / 2,
              1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecision({kHigh, kRel}), 1.0);  // Perfect.
  EXPECT_DOUBLE_EQ(AveragePrecision({kIrr, kIrr}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({}), 0.0);
  // Pushing the only relevant doc deeper lowers AP.
  EXPECT_GT(AveragePrecision({kRel, kIrr, kIrr}),
            AveragePrecision({kIrr, kIrr, kRel}));
}

TEST(MetricsTest, MeanAccumulator) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.AddOptional(std::nullopt);
  acc.AddOptional(6.0);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.Mean(), 4.0);
}

TEST(MetricsTest, AverageMetrics) {
  StrategyMetrics a;
  a.mrr = 0.5;
  a.avg_rank_relevant = 10.0;
  a.impressions = 100;
  StrategyMetrics b;
  b.mrr = 0.7;
  b.avg_rank_relevant = 14.0;
  b.impressions = 100;
  const auto mean = AverageMetrics({a, b});
  EXPECT_DOUBLE_EQ(mean.mrr, 0.6);
  EXPECT_DOUBLE_EQ(mean.avg_rank_relevant, 12.0);
  EXPECT_EQ(mean.impressions, 200);
}

// ---------- World ----------

TEST(WorldTest, BuildsAllComponents) {
  WorldConfig config;
  config.corpus.num_documents = 500;
  config.users.num_users = 4;
  config.queries.queries_per_class = 5;
  World world(config);
  EXPECT_EQ(world.corpus().size(), 500);
  EXPECT_EQ(world.users().size(), 4u);
  EXPECT_EQ(world.queries().size(), 15u);
  EXPECT_GT(world.ontology().size(), 100);
  EXPECT_EQ(world.QueriesOfClass(click::QueryClass::kContentHeavy).size(),
            5u);
  EXPECT_FALSE(world.search_backend().Search("hotel").results.empty());
}

TEST(WorldTest, DeterministicAcrossBuilds) {
  WorldConfig config;
  config.corpus.num_documents = 300;
  config.users.num_users = 3;
  config.queries.queries_per_class = 4;
  World a(config);
  World b(config);
  ASSERT_EQ(a.queries().size(), b.queries().size());
  for (size_t i = 0; i < a.queries().size(); ++i) {
    EXPECT_EQ(a.queries()[i].text, b.queries()[i].text);
  }
  for (corpus::DocId id = 0; id < a.corpus().size(); ++id) {
    ASSERT_EQ(a.corpus().doc(id).body, b.corpus().doc(id).body);
  }
}

// ---------- Harness ----------

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config;
    config.corpus.num_documents = 2000;
    config.users.num_users = 4;
    config.queries.queries_per_class = 8;
    config.backend.page_size = 15;
    world_ = new World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static SimulationOptions FastSim() {
    SimulationOptions sim;
    sim.train_days = 2;
    sim.queries_per_user_day = 3;
    sim.test_queries_per_user = 8;
    sim.ctr_samples_per_impression = 2;
    return sim;
  }

  static World* world_;
};

World* HarnessTest::world_ = nullptr;

TEST_F(HarnessTest, RunProducesSaneMetrics) {
  SimulationHarness harness(world_, FastSim());
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  const StrategyMetrics m = harness.Run(options);
  EXPECT_EQ(m.impressions, 4 * 8);
  EXPECT_GT(m.mrr, 0.0);
  EXPECT_LE(m.mrr, 1.0);
  EXPECT_GE(m.ndcg10, 0.0);
  EXPECT_LE(m.ndcg10, 1.0);
  EXPECT_GT(m.avg_rank_relevant, 1.0);
  EXPECT_LE(m.avg_rank_relevant, 15.0);
  for (double p : m.precision_at) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // P@k * k is non-decreasing in k (hit counts accumulate).
  for (int k = 2; k <= 10; ++k) {
    EXPECT_GE(m.precision_at[k - 1] * k, m.precision_at[k - 2] * (k - 1) - 1e-9);
  }
}

TEST_F(HarnessTest, TestQueriesAreDeterministicAndPersonal) {
  SimulationHarness harness(world_, FastSim());
  const auto& user = world_->users()[0];
  const auto a = harness.TestQueriesFor(user);
  const auto b = harness.TestQueriesFor(user);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);
  // Personal: the top query has above-average weight for this user.
  const auto weights = harness.QueryWeightsFor(user);
  double mean = 0.0;
  for (double w : weights) mean += w;
  mean /= weights.size();
  EXPECT_GT(weights[a[0]->id], mean);
}

TEST_F(HarnessTest, BaselineMetricsIdenticalAcrossRuns) {
  SimulationHarness harness(world_, FastSim());
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kBaseline;
  const StrategyMetrics a = harness.Run(options);
  const StrategyMetrics b = harness.Run(options);
  EXPECT_DOUBLE_EQ(a.avg_rank_relevant, b.avg_rank_relevant);
  EXPECT_DOUBLE_EQ(a.mrr, b.mrr);
  EXPECT_DOUBLE_EQ(a.ctr_at_1, b.ctr_at_1);
}


TEST_F(HarnessTest, TrainedRunIsFullyDeterministic) {
  SimulationHarness harness(world_, FastSim());
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  std::vector<ImpressionOutcome> a;
  std::vector<ImpressionOutcome> b;
  const StrategyMetrics ma = harness.Run(options, &a);
  const StrategyMetrics mb = harness.Run(options, &b);
  EXPECT_DOUBLE_EQ(ma.mrr, mb.mrr);
  EXPECT_DOUBLE_EQ(ma.ndcg10, mb.ndcg10);
  EXPECT_DOUBLE_EQ(ma.avg_rank_relevant, mb.avg_rank_relevant);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].reciprocal_rank, b[i].reciprocal_rank);
    EXPECT_DOUBLE_EQ(a[i].ndcg10, b[i].ndcg10);
  }
}

TEST_F(HarnessTest, DifferentSimSeedsChangeTraining) {
  SimulationOptions sim = FastSim();
  SimulationHarness h1(world_, sim);
  sim.seed += 1;
  SimulationHarness h2(world_, sim);
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  const StrategyMetrics a = h1.Run(options);
  const StrategyMetrics b = h2.Run(options);
  // The deterministic test sets are identical, but training trajectories
  // differ, so at least one aggregate differs almost surely.
  EXPECT_TRUE(a.mrr != b.mrr || a.ndcg10 != b.ndcg10 ||
              a.avg_rank_relevant != b.avg_rank_relevant);
}

TEST_F(HarnessTest, RunAveragedAggregates) {
  SimulationHarness harness(world_, FastSim());
  core::EngineOptions options;
  options.strategy = ranking::Strategy::kBaseline;
  const StrategyMetrics m = harness.RunAveraged(options, 2);
  EXPECT_EQ(m.impressions, 2 * 4 * 8);
}

}  // namespace
}  // namespace pws::eval
