#include "backend/posting_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace pws::backend {
namespace {

/// Encodes `postings` as consecutive blocks the way the index does
/// (base 0 for the first block, previous last_doc + 1 afterwards) and
/// returns the view pieces via out-params held by the caller.
struct EncodedList {
  std::vector<uint8_t> bytes;
  std::vector<BlockMeta> blocks;
  size_t payload_bytes = 0;  // bytes.size() minus the decode pad

  PostingListView View(uint32_t doc_count) const {
    return PostingListView(bytes.data(), blocks.data(),
                           static_cast<uint32_t>(blocks.size()), doc_count,
                           /*term_max=*/0.0);
  }
};

EncodedList Encode(const std::vector<Posting>& postings) {
  EncodedList out;
  corpus::DocId base = 0;
  for (size_t begin = 0; begin < postings.size();
       begin += kPostingBlockSize) {
    const int count = static_cast<int>(
        std::min<size_t>(kPostingBlockSize, postings.size() - begin));
    out.blocks.push_back(
        EncodePostingBlock(postings.data() + begin, count, base, &out.bytes));
    base = out.blocks.back().last_doc + 1;
  }
  // Decode reads up to kDecodeOverreadPad bytes past the payload (wide
  // unaligned word loads) — same guard the index appends to its arena.
  out.payload_bytes = out.bytes.size();
  out.bytes.resize(out.bytes.size() + kDecodeOverreadPad);
  return out;
}

/// Expected decode of `postings`: doc ids unchanged, tf normalized the
/// way the codec stores it (floor 1, clamp kMaxStoredTermFrequency).
std::vector<Posting> Normalized(std::vector<Posting> postings) {
  for (Posting& p : postings) {
    if (p.term_frequency <= 0) p.term_frequency = 1;
    if (static_cast<uint32_t>(p.term_frequency) > kMaxStoredTermFrequency) {
      p.term_frequency = static_cast<int32_t>(kMaxStoredTermFrequency);
    }
  }
  return postings;
}

void ExpectRoundTrip(const std::vector<Posting>& postings) {
  const EncodedList encoded = Encode(postings);
  const PostingListView view =
      encoded.View(static_cast<uint32_t>(postings.size()));
  const std::vector<Posting> decoded = view.Materialize();
  const std::vector<Posting> expected = Normalized(postings);
  ASSERT_EQ(decoded.size(), expected.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].doc, expected[i].doc) << "posting " << i;
    EXPECT_EQ(decoded[i].term_frequency, expected[i].term_frequency)
        << "posting " << i;
  }
}

TEST(PostingCodecTest, EmptyListIsAnEmptyView) {
  const EncodedList encoded = Encode({});
  const PostingListView view = encoded.View(0);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.num_blocks(), 0u);
  EXPECT_TRUE(view.Materialize().empty());
  PostingCursor cursor(view);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(PostingCodecTest, SingleDocRoundTrips) {
  ExpectRoundTrip({{0, 1}});
  ExpectRoundTrip({{42, 7}});
  ExpectRoundTrip({{std::numeric_limits<int32_t>::max() - 1, 3}});
}

TEST(PostingCodecTest, DenseConsecutiveDocsPackToZeroGapBits) {
  // Gaps of doc_i - doc_{i-1} - 1 == 0 everywhere: the packed format
  // stores them in 0 bits each.
  std::vector<Posting> postings;
  for (int i = 0; i < kPostingBlockSize; ++i) postings.push_back({i, 1});
  const EncodedList encoded = Encode(postings);
  ASSERT_EQ(encoded.blocks.size(), 1u);
  EXPECT_EQ(encoded.blocks[0].format,
            static_cast<uint8_t>(BlockFormat::kPacked));
  EXPECT_EQ(encoded.blocks[0].doc_bits, 0);
  EXPECT_EQ(encoded.blocks[0].tf_bits, 0);
  EXPECT_EQ(encoded.payload_bytes, 0u);  // the whole block is metadata-only
  ExpectRoundTrip(postings);
}

TEST(PostingCodecTest, MaxDeltaRoundTrips) {
  // A gap close to the full 31-bit doc space forces doc_bits to 31.
  const corpus::DocId huge = std::numeric_limits<int32_t>::max() - 2;
  ExpectRoundTrip({{0, 1}, {huge, 2}});
  ExpectRoundTrip({{huge - 1, 1}, {huge, 1}});
}

TEST(PostingCodecTest, OutlierGapSelectsVarint) {
  // 127 tiny gaps + one huge gap: fixed width would cost 31 bits for
  // every value; varint pays for the outlier alone.
  std::vector<Posting> postings;
  for (int i = 0; i < kPostingBlockSize - 1; ++i) postings.push_back({i, 1});
  postings.push_back({std::numeric_limits<int32_t>::max() - 1, 1});
  const EncodedList encoded = Encode(postings);
  ASSERT_EQ(encoded.blocks.size(), 1u);
  EXPECT_EQ(encoded.blocks[0].format,
            static_cast<uint8_t>(BlockFormat::kVarint));
  ExpectRoundTrip(postings);
}

TEST(PostingCodecTest, TermFrequencyFloorsAndClamps) {
  // tf <= 0 is stored as 1; tf above the cap is clamped, not wrapped.
  ExpectRoundTrip({{0, 0}, {5, -3}, {9, 1}});
  ExpectRoundTrip(
      {{0, static_cast<int32_t>(kMaxStoredTermFrequency)},
       {1, static_cast<int32_t>(kMaxStoredTermFrequency) + 1},
       {2, std::numeric_limits<int32_t>::max()}});
}

TEST(PostingCodecTest, BlockBoundarySizesRoundTrip) {
  // Lengths straddling the 128-doc block boundary: 127 (one partial
  // block), 128 (one full), 129 (full + single-doc block), 255/256/257.
  for (int n : {1, 2, kPostingBlockSize - 1, kPostingBlockSize,
                kPostingBlockSize + 1, 2 * kPostingBlockSize - 1,
                2 * kPostingBlockSize, 2 * kPostingBlockSize + 1}) {
    std::vector<Posting> postings;
    for (int i = 0; i < n; ++i) postings.push_back({i * 3 + 1, (i % 9) + 1});
    const EncodedList encoded = Encode(postings);
    EXPECT_EQ(encoded.blocks.size(),
              static_cast<size_t>((n + kPostingBlockSize - 1) /
                                  kPostingBlockSize))
        << "n=" << n;
    ExpectRoundTrip(postings);
  }
}

TEST(PostingCodecTest, StoredTfDecodeIsRealTfMinusOne) {
  // DecodePostingBlockStoredTf leaves tfs in stored form (tf - 1); the
  // block-max merge depends on that exact offset for its bound tables.
  std::vector<Posting> postings;
  for (int i = 0; i < 100; ++i) postings.push_back({i * 7 + 3, (i % 13) + 1});
  const EncodedList encoded = Encode(postings);
  ASSERT_EQ(encoded.blocks.size(), 1u);
  uint32_t docs[kPostingBlockSize];
  uint32_t stored[kPostingBlockSize];
  uint32_t real[kPostingBlockSize];
  DecodePostingBlockStoredTf(encoded.blocks[0], encoded.bytes.data(),
                             /*base=*/0, docs, stored);
  uint32_t docs2[kPostingBlockSize];
  DecodePostingBlock(encoded.blocks[0], encoded.bytes.data(), /*base=*/0,
                     docs2, real);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(docs[i], static_cast<uint32_t>(postings[i].doc)) << i;
    EXPECT_EQ(docs2[i], docs[i]) << i;
    EXPECT_EQ(real[i], stored[i] + 1) << i;
    EXPECT_EQ(static_cast<int32_t>(real[i]), postings[i].term_frequency) << i;
  }
}

TEST(PostingCodecTest, FindBlockLocatesTargets) {
  std::vector<Posting> postings;
  for (int i = 0; i < 300; ++i) postings.push_back({i * 2, 1});  // even ids
  const EncodedList encoded = Encode(postings);
  const PostingListView view = encoded.View(300);
  ASSERT_EQ(view.num_blocks(), 3u);
  EXPECT_EQ(view.FindBlock(0, 0), 0u);
  EXPECT_EQ(view.FindBlock(view.block(0).last_doc, 0), 0u);
  EXPECT_EQ(view.FindBlock(view.block(0).last_doc + 1, 0), 1u);
  EXPECT_EQ(view.FindBlock(view.block(2).last_doc, 0), 2u);
  EXPECT_EQ(view.FindBlock(view.block(2).last_doc + 1, 0), 3u);  // past end
  // from_block below an already-passed block never goes backwards.
  EXPECT_EQ(view.FindBlock(0, 2), 2u);
}

TEST(PostingCodecTest, CursorSeekMatchesLinearScan) {
  std::vector<Posting> postings;
  std::mt19937_64 rng(7);
  corpus::DocId doc = 0;
  for (int i = 0; i < 1000; ++i) {
    doc += 1 + static_cast<corpus::DocId>(rng() % 37);
    postings.push_back({doc, static_cast<int32_t>(1 + rng() % 5)});
  }
  const EncodedList encoded = Encode(postings);
  const PostingListView view = encoded.View(1000);

  // Seek to every present doc, every absent doc between, and past-end.
  for (int trial = 0; trial < 200; ++trial) {
    const corpus::DocId target =
        static_cast<corpus::DocId>(rng() % (postings.back().doc + 40));
    PostingCursor cursor(view);
    cursor.SeekTo(target);
    // Linear reference.
    size_t i = 0;
    while (i < postings.size() && postings[i].doc < target) ++i;
    if (i == postings.size()) {
      // The cursor may still sit shallow in the last block; loading
      // must push it to the end.
      cursor.EnsureLoaded();
      EXPECT_TRUE(cursor.AtEnd()) << "target=" << target;
    } else {
      ASSERT_FALSE(cursor.AtEnd()) << "target=" << target;
      cursor.EnsureLoaded();
      ASSERT_FALSE(cursor.AtEnd()) << "target=" << target;
      EXPECT_EQ(cursor.doc(), postings[i].doc) << "target=" << target;
      EXPECT_EQ(static_cast<int32_t>(cursor.tf()), postings[i].term_frequency)
          << "target=" << target;
    }
  }
}

TEST(PostingCodecTest, CursorShallowDocIsALowerBound) {
  std::vector<Posting> postings;
  for (int i = 0; i < 400; ++i) postings.push_back({i * 5 + 2, 1});
  const EncodedList encoded = Encode(postings);
  const PostingListView view = encoded.View(400);
  PostingCursor cursor(view);
  std::mt19937_64 rng(11);
  corpus::DocId target = 0;
  while (!cursor.AtEnd()) {
    target += 1 + static_cast<corpus::DocId>(rng() % 200);
    cursor.SeekTo(target);
    if (cursor.AtEnd()) break;
    const corpus::DocId claimed = cursor.doc();
    EXPECT_GE(claimed, target);
    cursor.EnsureLoaded();
    if (cursor.AtEnd()) break;
    EXPECT_GE(cursor.doc(), claimed);  // loading never moves backwards
  }
}

TEST(PostingCodecTest, RandomizedFuzzRoundTrips) {
  std::mt19937_64 rng(0xC0DEC);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 400);
    // Mix gap regimes so both formats and many widths get exercised:
    // dense runs, medium gaps, and occasional huge jumps.
    std::vector<Posting> postings;
    corpus::DocId doc = static_cast<corpus::DocId>(rng() % 1000);
    for (int i = 0; i < n; ++i) {
      postings.push_back(
          {doc, static_cast<int32_t>(rng() % 2000) - 10});  // some tf <= 0
      const int regime = static_cast<int>(rng() % 10);
      corpus::DocId gap;
      if (regime < 6) {
        gap = 1 + static_cast<corpus::DocId>(rng() % 4);
      } else if (regime < 9) {
        gap = 1 + static_cast<corpus::DocId>(rng() % 5000);
      } else {
        gap = 1 + static_cast<corpus::DocId>(rng() % 2000000);
      }
      doc += gap;
    }
    ExpectRoundTrip(postings);
  }
}

TEST(PostingCodecTest, FuzzCursorAgainstMaterialize) {
  std::mt19937_64 rng(0xBEEF);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 600);
    std::vector<Posting> postings;
    corpus::DocId doc = 0;
    for (int i = 0; i < n; ++i) {
      doc += 1 + static_cast<corpus::DocId>(rng() % 100);
      postings.push_back({doc, static_cast<int32_t>(1 + rng() % 30)});
    }
    const EncodedList encoded = Encode(postings);
    const PostingListView view = encoded.View(n);
    const std::vector<Posting> expected = view.Materialize();
    PostingCursor cursor(view);
    for (const Posting& p : expected) {
      ASSERT_FALSE(cursor.AtEnd());
      cursor.EnsureLoaded();
      ASSERT_EQ(cursor.doc(), p.doc);
      ASSERT_EQ(static_cast<int32_t>(cursor.tf()), p.term_frequency);
      cursor.Next();
    }
    EXPECT_TRUE(cursor.AtEnd());
  }
}

}  // namespace
}  // namespace pws::backend
