#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/arg_parser.h"
#include "util/id_map.h"
#include "util/json.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/ring_buffer.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"

namespace pws {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      InvalidArgumentError("x").code(), NotFoundError("x").code(),
      AlreadyExistsError("x").code(),  FailedPreconditionError("x").code(),
      OutOfRangeError("x").code(),     UnimplementedError("x").code(),
      InternalError("x").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = InvalidArgumentError("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH({ (void)result.value(); }, "boom");
}

// ---------- Random ----------

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, UniformDoubleInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Random rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, BernoulliEdgeCases) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliMeanApproximatesP) {
  Random rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RandomTest, CategoricalRespectsWeights) {
  Random rng(19);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.02);
}

TEST(RandomTest, CategoricalSkipsZeroWeights) {
  Random rng(23);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RandomTest, ZipfPrefersLowRanks) {
  Random rng(29);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Random rng(31);
  for (int k : {0, 1, 5, 20}) {
    const auto sample = rng.SampleWithoutReplacement(20, k);
    EXPECT_EQ(static_cast<int>(sample.size()), k);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(37);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

// ---------- Strings ----------

TEST(StringTest, StrSplitKeepsEmptyPieces) {
  const auto pieces = StrSplit("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringTest, SplitLinesStripsCarriageReturns) {
  const auto lines = SplitLines("a\r\nb\nc\r\n\r\n");
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
  EXPECT_EQ(lines[3], "");  // The lone "\r" line.
  EXPECT_EQ(lines[4], "");  // After the final newline.
}

TEST(StringTest, SplitLinesKeepsInteriorCarriageReturns) {
  const auto lines = SplitLines("a\rb\nplain");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a\rb");  // Only a trailing \r is line-ending noise.
  EXPECT_EQ(lines[1], "plain");
}

TEST(StringTest, StrSplitWhitespaceDropsEmpty) {
  const auto pieces = StrSplitWhitespace("  hello\t world \n");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "hello");
  EXPECT_EQ(pieces[1], "world");
}

TEST(StringTest, JoinInvertsSplit) {
  const std::string text = "x|y|z";
  EXPECT_EQ(StrJoin(StrSplit(text, '|'), "|"), text);
}

TEST(StringTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(StrTrim("  abc \t"), "abc");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("fo", "foo"));
}

TEST(StringTest, EscapeLineBreaksRoundTrips) {
  const std::vector<std::string> cases = {
      "", "plain", "tabs\tkeep\traw", "line\nbreak", "cr\rhere",
      "back\\slash", "\\n literal", "mix\\\r\n\\r end\\"};
  for (const std::string& original : cases) {
    const std::string escaped = EscapeLineBreaks(original);
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << original;
    EXPECT_EQ(escaped.find('\r'), std::string::npos) << original;
    EXPECT_EQ(UnescapeLineBreaks(escaped), original);
  }
  // Unknown escapes and a trailing backslash pass through verbatim.
  EXPECT_EQ(UnescapeLineBreaks("a\\tb"), "a\\tb");
  EXPECT_EQ(UnescapeLineBreaks("tail\\"), "tail\\");
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(StringTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringTest, ParseInt64RejectsSurroundingWhitespaceSymmetrically) {
  // sscanf skips leading whitespace, so "\t42" used to parse while
  // "42 " was rejected — an asymmetry that let padded fields slip
  // through strict parsers on one side only.
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64(" 42", &v));
  EXPECT_FALSE(ParseInt64("\t42", &v));
  EXPECT_FALSE(ParseInt64("\n42", &v));
  EXPECT_FALSE(ParseInt64("42 ", &v));
  EXPECT_FALSE(ParseInt64("42\t", &v));
}

TEST(StringTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5junk", &v));
}

TEST(StringTest, ParseDoubleRejectsSurroundingWhitespaceSymmetrically) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble(" 2.5", &v));
  EXPECT_FALSE(ParseDouble("\t2.5", &v));
  EXPECT_FALSE(ParseDouble("2.5 ", &v));
}

TEST(StringTest, ParseDoubleRejectsNonFiniteValues) {
  // Every consumer of ParseDouble (weights, scores, flags) requires a
  // finite value; "nan"/"inf" sneaking through %lf poisoned downstream
  // arithmetic instead of failing at the parse boundary.
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("NaN", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));
  EXPECT_FALSE(ParseDouble("-inf", &v));
  EXPECT_FALSE(ParseDouble("infinity", &v));
  EXPECT_FALSE(ParseDouble("1e999", &v));  // Overflows to +inf.
  // Finite hex floats (printf %a round trips) still parse.
  EXPECT_TRUE(ParseDouble("0x1.8p+1", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
}

// ---------- Math ----------

TEST(MathTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(L2Norm({3, 4}), 5.0);
}

TEST(MathTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(MathTest, EntropyUniformIsLogN) {
  EXPECT_NEAR(Entropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
}

TEST(MathTest, EntropyDegenerateIsZero) {
  EXPECT_EQ(Entropy({5.0}), 0.0);
  EXPECT_EQ(Entropy({0.0, 7.0, 0.0}), 0.0);
  EXPECT_EQ(Entropy({}), 0.0);
}

TEST(MathTest, NormalizeInPlace) {
  std::vector<double> w = {1, 3};
  NormalizeInPlace(w);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
  std::vector<double> zero = {0, 0};
  NormalizeInPlace(zero);  // No-op, no NaN.
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(MathTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), 2.0, 1e-12);
  EXPECT_EQ(StdDev({5}), 0.0);
}

TEST(MathTest, SigmoidSymmetryAndBounds) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(10.0) + Sigmoid(-10.0), 1.0, 1e-9);
  EXPECT_GT(Sigmoid(100.0), 0.999);
  EXPECT_LT(Sigmoid(-100.0), 0.001);
}

TEST(MathTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

// ---------- Table ----------

TEST(TableTest, AlignedRendering) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToAligned();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
}

TEST(TableTest, TsvRendering) {
  Table table({"a", "b"});
  table.AddNumericRow("row", {1.5}, 1);
  EXPECT_EQ(table.ToTsv(), "a\tb\nrow\t1.5\n");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table table({"one", "two"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width mismatch");
}

// ---------- ArgParser ----------

TEST(ArgParserTest, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--alpha=0.5", "--verbose", "input.txt",
                        "--count=7"};
  ArgParser args(5, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("alpha", 0.0), 0.5);
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetInt("count", 0), 7);
  EXPECT_EQ(args.GetString("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(ArgParserTest, MalformedNumbersFallBack) {
  const char* argv[] = {"prog", "--n=abc"};
  ArgParser args(2, argv);
  EXPECT_EQ(args.GetInt("n", 9), 9);
  EXPECT_TRUE(args.Has("n"));
}

TEST(ArgParserTest, MalformedNumbersWarnLoudly) {
  const char* argv[] = {"prog", "--n=abc", "--alpha=12..5"};
  ArgParser args(3, argv);
  // A typo'd flag must not be silently swallowed: the default still wins,
  // but a warning names the flag and the rejected value.
  testing::internal::CaptureStderr();
  EXPECT_EQ(args.GetInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.GetDouble("alpha", 0.25), 0.25);
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("malformed integer value 'abc'"), std::string::npos);
  EXPECT_NE(log.find("--n"), std::string::npos);
  EXPECT_NE(log.find("malformed numeric value '12..5'"), std::string::npos);
  EXPECT_NE(log.find("--alpha"), std::string::npos);
}

TEST(ArgParserTest, WellFormedNumbersDoNotWarn) {
  const char* argv[] = {"prog", "--n=4", "--alpha=0.5"};
  ArgParser args(3, argv);
  testing::internal::CaptureStderr();
  EXPECT_EQ(args.GetInt("n", 9), 4);
  EXPECT_DOUBLE_EQ(args.GetDouble("alpha", 0.25), 0.5);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// ---------- IdMap ----------

TEST(IdMapTest, InsertLookupAndDefault) {
  IdMap<int32_t, double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(3), nullptr);
  EXPECT_DOUBLE_EQ(map.ValueOr(3, -1.0), -1.0);
  map[3] = 1.5;
  map[7] += 2.0;  // operator[] default-initializes.
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(*map.Find(3), 1.5);
  EXPECT_DOUBLE_EQ(map.ValueOr(7, -1.0), 2.0);
  map[3] += 1.0;  // Existing key accumulates, size unchanged.
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(map.ValueOr(3, 0.0), 2.5);
}

TEST(IdMapTest, SurvivesGrowthAndCollisions) {
  IdMap<int64_t, int> map;
  // Enough keys to force several growths; strided keys exercise probe
  // chains.
  for (int64_t k = 0; k < 500; ++k) map[k * 16] = static_cast<int>(k);
  EXPECT_EQ(map.size(), 500u);
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_NE(map.Find(k * 16), nullptr);
    EXPECT_EQ(*map.Find(k * 16), static_cast<int>(k));
  }
  EXPECT_EQ(map.Find(1), nullptr);  // Off-stride key absent.
}

TEST(IdMapTest, ForEachVisitsEveryEntryOnceAndCanMutate) {
  IdMap<int32_t, double> map;
  for (int32_t k = 0; k < 40; ++k) map[k] = 1.0;
  std::set<int32_t> seen;
  map.ForEach([&](int32_t key, double& value) {
    EXPECT_TRUE(seen.insert(key).second);  // No duplicates.
    value *= 0.5;  // Decay through the reference.
  });
  EXPECT_EQ(seen.size(), 40u);
  const auto& cmap = map;
  double sum = 0.0;
  cmap.ForEach([&](int32_t, const double& value) { sum += value; });
  EXPECT_DOUBLE_EQ(sum, 20.0);
}

TEST(IdMapTest, DeterministicIterationForSameInsertionSequence) {
  auto build = [] {
    IdMap<int32_t, int> map;
    for (int32_t k : {9, 2, 14, 7, 31, 5}) map[k] = k;
    return map;
  };
  std::vector<int32_t> a, b;
  build().ForEach([&](int32_t key, int&) { a.push_back(key); });
  build().ForEach([&](int32_t key, int&) { b.push_back(key); });
  EXPECT_EQ(a, b);
}

TEST(IdMapDeathTest, NegativeKeysRejected) {
  IdMap<int32_t, int> map;
  EXPECT_DEATH(map[-1] = 0, "");
}

// ---------- RingBuffer ----------

TEST(RingBufferTest, FillsThenOverwritesOldest) {
  RingBuffer<int> ring(3);
  EXPECT_TRUE(ring.empty());
  ring.Push(1);
  ring.Push(2);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.at(0), 1);
  ring.Push(3);
  ring.Push(4);  // Evicts 1.
  ring.Push(5);  // Evicts 2.
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0), 3);
  EXPECT_EQ(ring.at(1), 4);
  EXPECT_EQ(ring.at(2), 5);
}

TEST(RingBufferTest, ForEachMatchesFrontTrimmedVector) {
  // The ring replaces a vector trimmed from the front; any push sequence
  // must yield identical visitation order.
  const size_t capacity = 5;
  RingBuffer<int> ring(capacity);
  std::vector<int> reference;
  for (int i = 0; i < 23; ++i) {
    ring.Push(i);
    reference.push_back(i);
    if (reference.size() > capacity) {
      reference.erase(reference.begin());
    }
    std::vector<int> visited;
    ring.ForEach([&](const int& v) { visited.push_back(v); });
    ASSERT_EQ(visited, reference) << "after push " << i;
  }
}

TEST(RingBufferTest, ClearResetsToEmpty) {
  RingBuffer<int> ring(2);
  ring.Push(1);
  ring.Push(2);
  ring.Push(3);  // Wrapped.
  ring.Clear();
  EXPECT_TRUE(ring.empty());
  ring.Push(7);
  EXPECT_EQ(ring.at(0), 7);
  EXPECT_EQ(ring.size(), 1u);
}

// ---------- JSON parsing ----------

TEST(JsonTest, ParsesScalars) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("null", &v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(ParseJson("true", &v));
  EXPECT_TRUE(v.Bool());
  ASSERT_TRUE(ParseJson("false", &v));
  EXPECT_TRUE(v.is_bool());
  EXPECT_FALSE(v.Bool());
  ASSERT_TRUE(ParseJson("-12.5e2", &v));
  EXPECT_DOUBLE_EQ(v.Number(), -1250.0);
  ASSERT_TRUE(ParseJson("\"hi\"", &v));
  EXPECT_EQ(v.String(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  JsonValue doc;
  ASSERT_TRUE(ParseJson(
      R"({"counters": {"hits": 3}, "items": [1, {"x": true}, null]})",
      &doc));
  EXPECT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc["counters"]["hits"].Number(), 3.0);
  ASSERT_EQ(doc["items"].Items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc["items"][0].Number(), 1.0);
  EXPECT_TRUE(doc["items"][1]["x"].Bool());
  EXPECT_TRUE(doc["items"][2].is_null());
}

TEST(JsonTest, DecodesStringEscapes) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(R"("a\"b\\c\/d\n\t\r\b\f")", &v));
  EXPECT_EQ(v.String(), "a\"b\\c/d\n\t\r\b\f");
  // \uXXXX decodes to UTF-8: ASCII, 2-byte, and 3-byte ranges.
  ASSERT_TRUE(ParseJson(R"("\u0041\u00e9\u20ac")", &v));
  EXPECT_EQ(v.String(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonTest, MissesChainToNullSafely) {
  JsonValue doc;
  ASSERT_TRUE(ParseJson(R"({"a": {"b": 1}})", &doc));
  EXPECT_TRUE(doc["a"]["nope"]["deeper"].is_null());
  EXPECT_DOUBLE_EQ(doc["missing"].Number(), 0.0);
  EXPECT_EQ(doc["a"]["b"]["not_an_object"].Number(), 0.0);
  EXPECT_TRUE(doc["a"].Items().empty());  // Object, not array.
  EXPECT_FALSE(doc.Has("missing"));
  EXPECT_TRUE(doc.Has("a"));
}

TEST(JsonTest, KeysPreserveDocumentOrder) {
  JsonValue doc;
  ASSERT_TRUE(ParseJson(R"({"zebra": 1, "alpha": 2, "mid": 3})", &doc));
  const std::vector<std::string> expected = {"zebra", "alpha", "mid"};
  EXPECT_EQ(doc.Keys(), expected);
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue v;
  for (const char* bad :
       {"", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "{a: 1}",
        "\"unterminated", "\"bad\\escape\"", "\"\\u12g4\"", "tru",
        "nul", "01x", "1 trailing", "{} {}", "[1,]", "{\"a\":1,}"}) {
    EXPECT_FALSE(ParseJson(bad, &v)) << "accepted: " << bad;
    EXPECT_TRUE(v.is_null()) << bad;
  }
}

TEST(JsonTest, RejectsRunawayNesting) {
  // Past the parser's depth bound — must fail cleanly, not overflow.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue v;
  EXPECT_FALSE(ParseJson(deep, &v));
}

TEST(JsonTest, SurroundingWhitespaceIsFine) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("  \n\t{ \"a\" : [ ] }  \n", &v));
  EXPECT_TRUE(v["a"].is_array());
}

}  // namespace
}  // namespace pws
