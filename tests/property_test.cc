// Property-based tests: invariants checked over randomized inputs,
// parameterized by seed. These guard structural guarantees that the
// example-based unit tests can't sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>

#include "click/relevance.h"
#include "eval/metrics.h"
#include "geo/gazetteer.h"
#include "geo/location_ontology.h"
#include "profile/user_profile.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace pws {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

// ---------- Ontology invariants over random gazetteers ----------

TEST_P(SeededProperty, OntologySimilarityIsAMetricLikeScore) {
  Random rng(GetParam());
  geo::SyntheticGazetteerOptions options;
  options.num_countries = 4;
  options.regions_per_country = 3;
  options.cities_per_region = 4;
  const geo::LocationOntology g = BuildSyntheticGazetteer(options, rng);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<geo::LocationId>(rng.UniformUint64(g.size()));
    const auto b = static_cast<geo::LocationId>(rng.UniformUint64(g.size()));
    const double sim = g.Similarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
    EXPECT_DOUBLE_EQ(sim, g.Similarity(b, a));        // Symmetry.
    EXPECT_DOUBLE_EQ(g.Similarity(a, a), 1.0);        // Identity.
  }
}

TEST_P(SeededProperty, LcaIsACommonAncestorAndDeepest) {
  Random rng(GetParam());
  geo::SyntheticGazetteerOptions options;
  const geo::LocationOntology g = BuildSyntheticGazetteer(options, rng);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<geo::LocationId>(rng.UniformUint64(g.size()));
    const auto b = static_cast<geo::LocationId>(rng.UniformUint64(g.size()));
    const geo::LocationId lca = g.LowestCommonAncestor(a, b);
    EXPECT_TRUE(g.IsAncestorOf(lca, a));
    EXPECT_TRUE(g.IsAncestorOf(lca, b));
    // No strictly deeper common ancestor exists: the LCA's children that
    // are ancestors of a are not ancestors of b (and vice versa).
    for (geo::LocationId child : g.node(lca).children) {
      EXPECT_FALSE(g.IsAncestorOf(child, a) && g.IsAncestorOf(child, b));
    }
  }
}

TEST_P(SeededProperty, NearestCityIsActuallyNearest) {
  Random rng(GetParam());
  geo::SyntheticGazetteerOptions options;
  options.num_countries = 3;
  const geo::LocationOntology g = BuildSyntheticGazetteer(options, rng);
  const auto cities = g.CitiesUnder(g.root());
  for (int trial = 0; trial < 20; ++trial) {
    const geo::GeoPoint p{rng.UniformDouble(-60, 70),
                          rng.UniformDouble(-180, 180)};
    const geo::LocationId nearest = g.NearestCity(p);
    const double best = HaversineKm(p, g.node(nearest).coords);
    for (geo::LocationId city : cities) {
      EXPECT_LE(best, HaversineKm(p, g.node(city).coords) + 1e-9);
    }
  }
}

// ---------- Geometry ----------

TEST_P(SeededProperty, HaversineTriangleInequality) {
  Random rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const geo::GeoPoint a{rng.UniformDouble(-89, 89),
                          rng.UniformDouble(-180, 180)};
    const geo::GeoPoint b{rng.UniformDouble(-89, 89),
                          rng.UniformDouble(-180, 180)};
    const geo::GeoPoint c{rng.UniformDouble(-89, 89),
                          rng.UniformDouble(-180, 180)};
    EXPECT_LE(HaversineKm(a, c),
              HaversineKm(a, b) + HaversineKm(b, c) + 1e-6);
  }
}

// ---------- Text ----------

TEST_P(SeededProperty, TokenizerOutputIsNormalizedAndStable) {
  Random rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    for (int i = 0; i < 60; ++i) {
      input.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    }
    const auto tokens = text::Tokenize(input);
    for (const auto& token : tokens) {
      EXPECT_FALSE(token.empty());
      for (char c : token) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            << "token '" << token << "' from input '" << input << "'";
      }
      // Re-tokenizing a token is the identity.
      const auto again = text::Tokenize(token);
      ASSERT_EQ(again.size(), 1u);
      EXPECT_EQ(again[0], token);
    }
  }
}

TEST_P(SeededProperty, StemNeverGrowsAndIsLowercase) {
  Random rng(GetParam());
  static const char* kSuffixes[] = {"ing", "ed", "s", "ation", "ness",
                                    "ful", "ly", "izer", ""};
  for (int trial = 0; trial < 100; ++trial) {
    std::string word;
    const int len = static_cast<int>(rng.UniformInt(3, 8));
    for (int i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.UniformUint64(26)));
    }
    word += kSuffixes[rng.UniformUint64(std::size(kSuffixes))];
    const std::string stem = text::PorterStem(word);
    EXPECT_LE(stem.size(), word.size());
    EXPECT_GE(stem.size(), 1u);
  }
}

// ---------- Metrics ----------

TEST_P(SeededProperty, MetricsBoundedAndConsistent) {
  Random rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    eval::GradeList grades;
    const int n = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < n; ++i) {
      grades.push_back(
          static_cast<click::RelevanceGrade>(rng.UniformInt(0, 2)));
    }
    const double ndcg = eval::NdcgAtK(grades, 10);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0 + 1e-12);
    const double rr = eval::ReciprocalRank(grades);
    EXPECT_GE(rr, 0.0);
    EXPECT_LE(rr, 1.0);
    // Recall@k monotone in k; P@k bounded.
    double prev_recall = 0.0;
    for (int k = 1; k <= n; ++k) {
      const double recall = eval::RecallAtK(grades, k);
      EXPECT_GE(recall, prev_recall - 1e-12);
      prev_recall = recall;
      const double precision = eval::PrecisionAtK(grades, k);
      EXPECT_GE(precision, 0.0);
      EXPECT_LE(precision, 1.0);
    }
    // RR > 0 iff a relevant doc exists iff avg rank has a value.
    const auto avg_rank = eval::AverageRankOfRelevant(grades);
    EXPECT_EQ(rr > 0.0, avg_rank.has_value());
    if (avg_rank.has_value()) {
      EXPECT_GE(*avg_rank, 1.0);
      EXPECT_LE(*avg_rank, static_cast<double>(n));
      // The first relevant rank (1/rr) can't exceed the mean rank.
      EXPECT_LE(1.0 / rr, *avg_rank + 1e-9);
    }
  }
}

// ---------- Sorting by a perfect signal is ideal ----------

TEST_P(SeededProperty, OracleOrderingMaximizesNdcg) {
  Random rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    eval::GradeList grades;
    const int n = static_cast<int>(rng.UniformInt(2, 15));
    for (int i = 0; i < n; ++i) {
      grades.push_back(
          static_cast<click::RelevanceGrade>(rng.UniformInt(0, 2)));
    }
    eval::GradeList sorted = grades;
    std::sort(sorted.begin(), sorted.end(),
              [](click::RelevanceGrade a, click::RelevanceGrade b) {
                return static_cast<int>(a) > static_cast<int>(b);
              });
    EXPECT_GE(eval::NdcgAtK(sorted, 10) + 1e-12, eval::NdcgAtK(grades, 10));
  }
}

// ---------- RankSvm ----------

TEST_P(SeededProperty, UninformativePairsStayNearPrior) {
  Random rng(GetParam());
  // Pairs hold raw row pointers; the deque owns the rows (stable
  // addresses across growth).
  std::deque<std::array<double, 4>> rows;
  std::vector<ranking::TrainingPair> pairs;
  for (int i = 0; i < 80; ++i) {
    std::array<double, 4> row;
    for (int d = 0; d < 4; ++d) row[d] = rng.UniformDouble();
    rows.push_back(row);
    ranking::TrainingPair pair;
    pair.preferred = rows.back().data();  // Identical vectors: zero signal.
    pair.other = rows.back().data();
    pairs.push_back(pair);
  }
  ranking::RankSvm model(4);
  model.SetPrior({0.5, 0.0, -0.5, 1.0});
  model.Train(pairs, ranking::RankSvmOptions{});
  EXPECT_NEAR(model.weights()[0], 0.5, 0.05);
  EXPECT_NEAR(model.weights()[1], 0.0, 0.05);
  EXPECT_NEAR(model.weights()[2], -0.5, 0.05);
  EXPECT_NEAR(model.weights()[3], 1.0, 0.05);
}

TEST_P(SeededProperty, TrainingIsInvariantToPairOrder) {
  Random rng(GetParam());
  std::deque<std::array<double, 2>> rows;
  std::vector<ranking::TrainingPair> pairs;
  for (int i = 0; i < 40; ++i) {
    ranking::TrainingPair pair;
    rows.push_back({rng.UniformDouble(), rng.UniformDouble()});
    pair.preferred = rows.back().data();
    rows.push_back({rng.UniformDouble(), rng.UniformDouble()});
    pair.other = rows.back().data();
    pairs.push_back(pair);
  }
  ranking::RankSvm a(2);
  a.Train(pairs, ranking::RankSvmOptions{});
  // Reversed input order: the internal shuffle (fixed seed) determines
  // the visit order, but different input order -> different trajectory.
  // The *scores'* pairwise accuracy should be comparable; exact equality
  // is not required. What must hold: training twice on identical input
  // is identical (determinism under same input).
  ranking::RankSvm b(2);
  b.Train(pairs, ranking::RankSvmOptions{});
  EXPECT_EQ(a.weights(), b.weights());
}

// ---------- Profile ----------

TEST_P(SeededProperty, NoClicksMeansNoProfileChange) {
  Random rng(GetParam());
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(0, &world);
  click::ClickRecord record;
  profile::ImpressionConcepts impression;
  const int n = static_cast<int>(rng.UniformInt(1, 10));
  for (int i = 0; i < n; ++i) {
    click::Interaction interaction;
    interaction.rank = i;
    interaction.doc = i;
    record.interactions.push_back(interaction);
    impression.AppendResultTerms({"term"});
    impression.locations_per_result.push_back({});
  }
  profile.ObserveImpression(record, impression, nullptr,
                            profile::ProfileUpdateOptions{});
  EXPECT_EQ(profile.ContentWeight("term"), 0.0);
  EXPECT_EQ(profile.ContentConceptCount(), 0);
}

TEST_P(SeededProperty, DecayIsMonotoneContraction) {
  Random rng(GetParam());
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  profile::UserProfile profile(0, &world);
  for (int i = 0; i < 20; ++i) {
    profile.AddContentWeight("t" + std::to_string(i),
                             rng.UniformDouble(-5, 5));
  }
  const double max_before = profile.MaxContentWeight();
  profile::ProfileUpdateOptions options;
  options.daily_decay = 0.9;
  profile.DecayDaily(options);
  EXPECT_LE(profile.MaxContentWeight(), max_before + 1e-12);
  for (int i = 0; i < 20; ++i) {
    const double w = profile.ContentWeight("t" + std::to_string(i));
    EXPECT_LE(std::abs(w), 5.0 * 0.9 + 1e-9);
  }
}

// ---------- Features ----------

TEST_P(SeededProperty, FeatureVectorsAreBounded) {
  Random rng(GetParam());
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  const auto cities = world.CitiesUnder(world.root());
  profile::UserProfile profile(0, &world);
  for (int i = 0; i < 10; ++i) {
    profile.AddContentWeight("c" + std::to_string(i),
                             rng.UniformDouble(-3, 10));
    profile.AddLocationWeight(cities[rng.UniformUint64(cities.size())],
                              rng.UniformDouble(0, 10));
  }

  backend::ResultPage page;
  page.query = "anything";
  profile::ImpressionConcepts impression;
  concepts::QueryLocationConcepts locations;
  const int n = static_cast<int>(rng.UniformInt(1, 20));
  for (int i = 0; i < n; ++i) {
    backend::SearchResult result;
    result.doc = i;
    result.rank = i;
    result.score = rng.UniformDouble(0, 20);
    page.results.push_back(result);
    std::vector<std::string> row;
    for (int t = 0; t < rng.UniformInt(0, 5); ++t) {
      row.push_back("c" + std::to_string(rng.UniformUint64(14)));
    }
    impression.AppendResultTerms(row);
    std::vector<geo::LocationId> locs;
    if (rng.Bernoulli(0.6)) {
      locs.push_back(cities[rng.UniformUint64(cities.size())]);
    }
    locations.per_result.push_back(locs);
  }

  ranking::FeatureContext context;
  context.ontology = &world;
  context.user_profile = &profile;
  context.impression = &impression;
  context.query_locations = &locations;
  if (rng.Bernoulli(0.5)) {
    context.query_mentioned_locations = {
        cities[rng.UniformUint64(cities.size())]};
  }
  if (rng.Bernoulli(0.5)) {
    context.gps_position = world.node(cities[0]).coords;
  }

  const auto features = ranking::ExtractFeatures(page, context);
  ASSERT_EQ(features.rows(), n);
  for (double v : features.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

// ---------- Relevance model ----------

TEST_P(SeededProperty, RelevanceAlwaysInUnitInterval) {
  Random rng(GetParam());
  const geo::LocationOntology world = geo::BuildWorldGazetteer();
  Random topic_rng(3);
  const corpus::TopicModel topics = corpus::TopicModel::Create(10, 5,
                                                               topic_rng);
  click::UserPopulationOptions user_options;
  user_options.num_users = 3;
  Random user_rng(GetParam());
  const auto users =
      GenerateUserPopulation(topics, world, user_options, user_rng);
  const click::RelevanceModel model(&world, click::RelevanceModelOptions{});
  const auto cities = world.CitiesUnder(world.root());

  for (int trial = 0; trial < 100; ++trial) {
    corpus::Document doc;
    doc.topic_mixture_truth.assign(10, 0.0);
    const int t1 = static_cast<int>(rng.UniformUint64(10));
    const int t2 = static_cast<int>(rng.UniformUint64(10));
    doc.topic_mixture_truth[t1] += rng.UniformDouble(0, 1);
    doc.topic_mixture_truth[t2] += 1.0 - doc.topic_mixture_truth[t1];
    doc.primary_topic_truth = t1;
    if (rng.Bernoulli(0.5)) {
      doc.primary_location_truth = cities[rng.UniformUint64(cities.size())];
    }
    click::QueryIntent intent;
    intent.topic = static_cast<int>(rng.UniformUint64(10));
    intent.location_intent_weight = rng.UniformDouble();
    if (rng.Bernoulli(0.4)) {
      intent.explicit_location = cities[rng.UniformUint64(cities.size())];
    } else if (rng.Bernoulli(0.5)) {
      intent.implicit_local = true;
    }
    for (const auto& user : users) {
      const double rel = model.TrueRelevance(user, intent, doc);
      EXPECT_GE(rel, 0.0);
      EXPECT_LE(rel, 1.0);
    }
  }
}

}  // namespace
}  // namespace pws
