#include <gtest/gtest.h>

#include <set>

#include "corpus/corpus.h"
#include "corpus/corpus_generator.h"
#include "corpus/topic_model.h"
#include "geo/gazetteer.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace pws::corpus {
namespace {

// ---------- TopicModel ----------

TEST(TopicModelTest, CreatesRequestedTopics) {
  Random rng(1);
  const TopicModel model = TopicModel::Create(10, 20, rng);
  EXPECT_EQ(model.num_topics(), 10);
  for (int t = 0; t < 10; ++t) {
    EXPECT_FALSE(model.topic(t).name.empty());
    EXPECT_GE(model.topic(t).core_terms.size(), 6u);
    EXPECT_EQ(model.topic(t).filler_terms.size(), 20u);
  }
}

TEST(TopicModelTest, FillerVocabulariesDisjointAcrossTopics) {
  Random rng(2);
  const TopicModel model = TopicModel::Create(8, 30, rng);
  std::set<std::string> seen;
  for (int t = 0; t < 8; ++t) {
    for (const auto& term : model.topic(t).filler_terms) seen.insert(term);
  }
  // Prefixing by topic name makes cross-topic collisions impossible;
  // within-topic duplicates are possible but rare.
  int total = 8 * 30;
  EXPECT_GT(static_cast<int>(seen.size()), total * 3 / 4);
}

TEST(TopicModelTest, SampleTermDrawsFromOwnVocabulary) {
  Random rng(3);
  const TopicModel model = TopicModel::Create(4, 10, rng);
  for (int t = 0; t < 4; ++t) {
    std::set<std::string> allowed(model.topic(t).core_terms.begin(),
                                  model.topic(t).core_terms.end());
    allowed.insert(model.topic(t).filler_terms.begin(),
                   model.topic(t).filler_terms.end());
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(allowed.count(model.SampleTerm(t, rng)) > 0);
    }
  }
}

TEST(TopicModelTest, FindTopic) {
  Random rng(4);
  const TopicModel model = TopicModel::Create(6, 5, rng);
  EXPECT_EQ(model.FindTopic(model.topic(3).name), 3);
  EXPECT_EQ(model.FindTopic("no-such-vertical"), -1);
}

TEST(TopicModelTest, LocationSensitivityIsMarked) {
  Random rng(5);
  const TopicModel model = TopicModel::Create(24, 5, rng);
  int geo = 0;
  for (int t = 0; t < model.num_topics(); ++t) {
    if (model.topic(t).location_sensitive) ++geo;
  }
  EXPECT_GT(geo, 8);
  EXPECT_LT(geo, 24);
}

// ---------- Corpus / generator ----------

class CorpusGeneratorTest : public ::testing::Test {
 protected:
  CorpusGeneratorTest()
      : rng_(7),
        topics_(TopicModel::Create(8, 20, rng_)),
        ontology_(geo::BuildWorldGazetteer()) {
    options_.num_documents = 300;
    generator_ = std::make_unique<CorpusGenerator>(&topics_, &ontology_,
                                                   options_);
    corpus_ = std::make_unique<Corpus>(generator_->Generate(rng_));
  }

  Random rng_;
  TopicModel topics_;
  geo::LocationOntology ontology_;
  CorpusGeneratorOptions options_;
  std::unique_ptr<CorpusGenerator> generator_;
  std::unique_ptr<Corpus> corpus_;
};

TEST_F(CorpusGeneratorTest, GeneratesRequestedCount) {
  EXPECT_EQ(corpus_->size(), 300);
}

TEST_F(CorpusGeneratorTest, DocumentsHaveConsistentGroundTruth) {
  for (const auto& doc : corpus_->documents()) {
    ASSERT_EQ(doc.topic_mixture_truth.size(), 8u);
    double total = 0.0;
    for (double w : doc.topic_mixture_truth) total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(doc.primary_topic_truth, 0);
    EXPECT_LT(doc.primary_topic_truth, 8);
    // Primary topic is the argmax of the mixture.
    for (double w : doc.topic_mixture_truth) {
      EXPECT_LE(w, doc.topic_mixture_truth[doc.primary_topic_truth] + 1e-12);
    }
    EXPECT_FALSE(doc.title.empty());
    EXPECT_FALSE(doc.body.empty());
    EXPECT_TRUE(StartsWith(doc.url, "http://"));
  }
}

TEST_F(CorpusGeneratorTest, LocatedDocsMentionTheirCityInBody) {
  int located = 0;
  for (const auto& doc : corpus_->documents()) {
    if (doc.primary_location_truth == geo::kInvalidLocation) continue;
    ++located;
    const std::string& city = ontology_.node(doc.primary_location_truth).name;
    EXPECT_NE(doc.body.find(city), std::string::npos)
        << "doc " << doc.id << " about '" << city
        << "' does not mention it";
    // The planted list contains the primary city.
    bool found = false;
    for (geo::LocationId loc : doc.planted_locations_truth) {
      if (loc == doc.primary_location_truth) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_GT(located, 30);
}

TEST_F(CorpusGeneratorTest, LocationFreeDocsExist) {
  EXPECT_GT(corpus_->CountLocationFree(), 30);
}

TEST_F(CorpusGeneratorTest, LocationSubtreeCountsAreConsistent) {
  int total_cities = 0;
  for (geo::LocationId country :
       ontology_.NodesAtLevel(geo::LocationLevel::kCountry)) {
    total_cities += corpus_->CountByLocationSubtree(ontology_, country);
  }
  const int located = corpus_->size() - corpus_->CountLocationFree();
  EXPECT_EQ(total_cities, located);
  EXPECT_EQ(corpus_->CountByLocationSubtree(ontology_, ontology_.root()),
            located);
}

TEST_F(CorpusGeneratorTest, TopicCountsSumToCorpusSize) {
  int total = 0;
  for (int t = 0; t < topics_.num_topics(); ++t) {
    total += corpus_->CountByTopic(t);
  }
  EXPECT_EQ(total, corpus_->size());
}

TEST_F(CorpusGeneratorTest, DeterministicGivenSeed) {
  Random rng_a(42);
  Random rng_b(42);
  const Corpus a = generator_->Generate(rng_a);
  const Corpus b = generator_->Generate(rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (DocId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.doc(id).body, b.doc(id).body);
    EXPECT_EQ(a.doc(id).primary_location_truth,
              b.doc(id).primary_location_truth);
  }
}

TEST_F(CorpusGeneratorTest, GeoTopicsAreLocatedMoreOften) {
  // Count located fraction for geo vs non-geo primary topics.
  int geo_docs = 0, geo_located = 0, plain_docs = 0, plain_located = 0;
  for (const auto& doc : corpus_->documents()) {
    const bool is_geo = topics_.topic(doc.primary_topic_truth).location_sensitive;
    const bool located = doc.primary_location_truth != geo::kInvalidLocation;
    if (is_geo) {
      ++geo_docs;
      if (located) ++geo_located;
    } else {
      ++plain_docs;
      if (located) ++plain_located;
    }
  }
  ASSERT_GT(geo_docs, 0);
  ASSERT_GT(plain_docs, 0);
  EXPECT_GT(static_cast<double>(geo_located) / geo_docs,
            static_cast<double>(plain_located) / plain_docs);
}

TEST(CorpusTest, AddEnforcesIdOrder) {
  Corpus corpus;
  Document doc;
  doc.id = 0;
  corpus.Add(doc);
  Document bad;
  bad.id = 5;
  EXPECT_DEATH(corpus.Add(bad), "id order");
}

}  // namespace
}  // namespace pws::corpus
