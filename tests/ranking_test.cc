#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "geo/gazetteer.h"
#include "profile/user_profile.h"
#include "ranking/feature_slab.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "ranking/ranker.h"

namespace pws::ranking {
namespace {

// ---------- RankSvm ----------

// TrainingPair holds raw row pointers; this builder owns the backing
// rows (deque: element addresses are stable across growth).
class PairBuilder {
 public:
  void Add(std::vector<double> preferred, std::vector<double> other,
           double weight = 1.0) {
    rows_.push_back(std::move(preferred));
    const double* p = rows_.back().data();
    rows_.push_back(std::move(other));
    const double* o = rows_.back().data();
    TrainingPair pair;
    pair.preferred = p;
    pair.other = o;
    pair.weight = weight;
    pairs_.push_back(pair);
  }

  const std::vector<TrainingPair>& pairs() const { return pairs_; }

 private:
  std::deque<std::vector<double>> rows_;
  std::vector<TrainingPair> pairs_;
};

TEST(RankSvmTest, LearnsSeparableSignal) {
  Random rng(1);
  PairBuilder builder;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> preferred(4), other(4);
    for (int d = 0; d < 4; ++d) {
      preferred[d] = rng.UniformDouble();
      other[d] = rng.UniformDouble();
    }
    preferred[2] += 0.5;  // Dimension 2 is the signal.
    builder.Add(std::move(preferred), std::move(other));
  }
  RankSvm model(4);
  EXPECT_FALSE(model.is_trained());
  model.Train(builder.pairs(), RankSvmOptions{});
  EXPECT_TRUE(model.is_trained());
  // Signal weight dominates.
  for (int d = 0; d < 4; ++d) {
    if (d != 2) EXPECT_GT(model.weights()[2], std::abs(model.weights()[d]));
  }
  // High pair accuracy.
  int correct = 0;
  for (const auto& pair : builder.pairs()) {
    if (model.Score(pair.preferred) > model.Score(pair.other)) ++correct;
  }
  EXPECT_GT(correct, 330);
}

TEST(RankSvmTest, EmptyTrainingIsNoop) {
  RankSvm model(3);
  EXPECT_DOUBLE_EQ(model.Train({}, RankSvmOptions{}), 0.0);
  EXPECT_TRUE(model.is_trained());
  EXPECT_DOUBLE_EQ(model.Score({1.0, 1.0, 1.0}), 0.0);
}

TEST(RankSvmTest, TrainRejectsNonPositiveEpochs) {
  RankSvm model(3);
  RankSvmOptions options;
  options.epochs = 0;
  EXPECT_DEATH(model.Train({}, options), "epochs");
  options.epochs = -2;
  EXPECT_DEATH(model.Train({}, options), "epochs");
}

TEST(RankSvmTest, DeterministicTraining) {
  Random rng(2);
  PairBuilder builder;
  for (int i = 0; i < 50; ++i) {
    builder.Add({rng.UniformDouble(), rng.UniformDouble()},
                {rng.UniformDouble(), rng.UniformDouble()});
  }
  RankSvm a(2);
  RankSvm b(2);
  a.Train(builder.pairs(), RankSvmOptions{});
  b.Train(builder.pairs(), RankSvmOptions{});
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(RankSvmTest, ScoreRangeSplitsBlocks) {
  RankSvm model(4);
  model.set_weights({1.0, 2.0, 3.0, 4.0});
  const std::vector<double> x = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(model.Score(x), 10.0);
  EXPECT_DOUBLE_EQ(model.ScoreRange(x, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(model.ScoreRange(x, 2, 4), 7.0);
  EXPECT_DOUBLE_EQ(model.ScoreRange(x, 2, 2), 0.0);
}

TEST(RankSvmTest, PriorActsAsInitialWeightsAndRegularizationCenter) {
  RankSvm model(2);
  model.SetPrior({1.5, 0.0});
  EXPECT_TRUE(model.is_trained());
  EXPECT_DOUBLE_EQ(model.Score({1.0, 0.0}), 1.5);
  // Training on pairs that carry no signal leaves weights near the prior
  // (L2 pulls toward it).
  Random rng(3);
  PairBuilder builder;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.UniformDouble();
    // Dim 0 identical within a pair.
    builder.Add({v, rng.UniformDouble()}, {v, rng.UniformDouble()});
  }
  model.Train(builder.pairs(), RankSvmOptions{});
  EXPECT_GT(model.weights()[0], 1.0);  // Still anchored near the prior.
}

TEST(RankSvmTest, WeightedPairsMatterMore) {
  // Conflicting pairs: heavy ones say dim0 up, light ones say down.
  PairBuilder builder;
  for (int i = 0; i < 40; ++i) {
    builder.Add({1.0}, {0.0}, 3.0);
    builder.Add({0.0}, {1.0}, 0.5);
  }
  RankSvm model(1);
  model.Train(builder.pairs(), RankSvmOptions{});
  EXPECT_GT(model.weights()[0], 0.0);
}

TEST(RankSvmTest, SlabBackedPairsTrainIdenticallyToStandaloneRows) {
  // Pairs pointing into a FeatureSlab must train to exactly the weights
  // of pairs pointing at standalone vectors with the same values — the
  // slab is storage, not semantics.
  Random rng(7);
  FeatureBlock block(6);
  for (int i = 0; i < block.rows(); ++i) {
    for (int d = 0; d < kFeatureCount; ++d) {
      block.row(i)[d] = rng.UniformDouble();
    }
  }
  FeatureSlab slab(4);  // Tiny chunks force multi-chunk copies.
  const double* rows = slab.CopyBlock(block);
  std::vector<TrainingPair> slab_pairs;
  PairBuilder builder;
  for (int i = 0; i + 1 < block.rows(); ++i) {
    TrainingPair pair;
    pair.preferred = rows + static_cast<size_t>(i) * kFeatureCount;
    pair.other = rows + static_cast<size_t>(i + 1) * kFeatureCount;
    slab_pairs.push_back(pair);
    builder.Add(block.RowVector(i), block.RowVector(i + 1));
  }
  RankSvm a(kFeatureCount);
  RankSvm b(kFeatureCount);
  a.Train(slab_pairs, RankSvmOptions{});
  b.Train(builder.pairs(), RankSvmOptions{});
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(FeatureSlabTest, BlockCopiesStayContiguousAndStable) {
  FeatureSlab slab(2);  // Two rows per chunk.
  FeatureBlock small(2);
  FeatureBlock large(5);  // Larger than a chunk: oversized chunk path.
  for (int i = 0; i < small.rows(); ++i) small.row(i)[0] = 1.0 + i;
  for (int i = 0; i < large.rows(); ++i) large.row(i)[0] = 10.0 + i;
  const double* first = slab.CopyBlock(small);
  const double* second = slab.CopyBlock(large);
  const double* third = slab.CopyBlock(small);
  // Later copies must not move earlier ones.
  EXPECT_DOUBLE_EQ(first[0], 1.0);
  EXPECT_DOUBLE_EQ(first[kFeatureCount], 2.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(second[static_cast<size_t>(i) * kFeatureCount],
                     10.0 + i);
  }
  EXPECT_DOUBLE_EQ(third[0], 1.0);
  EXPECT_GE(slab.row_count(), 9u);
  // Clear rewinds and reuses storage; the next copy may land on the
  // first chunk again.
  slab.Clear();
  EXPECT_EQ(slab.row_count(), 0u);
  const double* reused = slab.CopyBlock(small);
  EXPECT_EQ(reused, first);
}

// ---------- Feature extraction ----------

class FeatureTest : public ::testing::Test {
 protected:
  FeatureTest() : ontology_(geo::BuildWorldGazetteer()), profile_(0, &ontology_) {
    page_.query = "test";
    for (int i = 0; i < 4; ++i) {
      backend::SearchResult result;
      result.doc = i;
      result.rank = i;
      result.score = 10.0 - i;
      page_.results.push_back(result);
    }
    impression_.AppendResultTerms({"alpha"});
    impression_.AppendResultTerms({"beta"});
    impression_.AppendResultTerms({"alpha", "beta"});
    impression_.AppendResultTerms({});
    // All results located -> gate open.
    locations_.per_result = {{Tokyo()}, {Osaka()}, {Tokyo()}, {Berlin()}};
    concepts::LocationConcept tokyo_concept;
    tokyo_concept.location = Tokyo();
    tokyo_concept.doc_count = 2;
    tokyo_concept.weight = 0.5;
    locations_.aggregated.push_back(tokyo_concept);
  }

  geo::LocationId Tokyo() { return ontology_.Lookup("tokyo")[0]; }
  geo::LocationId Osaka() { return ontology_.Lookup("osaka")[0]; }
  geo::LocationId Berlin() { return ontology_.Lookup("berlin")[0]; }

  FeatureContext Context() {
    FeatureContext context;
    context.ontology = &ontology_;
    context.user_profile = &profile_;
    context.impression = &impression_;
    context.query_locations = &locations_;
    return context;
  }

  geo::LocationOntology ontology_;
  profile::UserProfile profile_;
  backend::ResultPage page_;
  profile::ImpressionConcepts impression_;
  concepts::QueryLocationConcepts locations_;
};

TEST_F(FeatureTest, DimensionsAndDeterminism) {
  const auto a = ExtractFeatures(page_, Context());
  const auto b = ExtractFeatures(page_, Context());
  ASSERT_EQ(a.rows(), 4);
  EXPECT_EQ(a.data().size(), static_cast<size_t>(4 * kFeatureCount));
  EXPECT_EQ(a, b);
}

TEST_F(FeatureTest, ContentFeaturesReflectProfile) {
  profile_.AddContentWeight("alpha", 4.0);
  const auto features = ExtractFeatures(page_, Context());
  EXPECT_GT(features.row(0)[0], 0.0);   // Has "alpha".
  EXPECT_EQ(features.row(1)[0], 0.0);   // Only "beta" (weight 0).
  EXPECT_GT(features.row(2)[0], 0.0);
  EXPECT_EQ(features.row(3)[0], 0.0);   // No concepts.
  EXPECT_DOUBLE_EQ(features.row(0)[1], 1.0);  // 1/1 concepts positive.
  EXPECT_DOUBLE_EQ(features.row(2)[1], 0.5);  // 1/2 concepts positive.
}

TEST_F(FeatureTest, QueryLocationMatch) {
  auto context = Context();
  context.query_mentioned_locations = {Tokyo()};
  const auto features = ExtractFeatures(page_, context);
  // Tokyo doc.
  EXPECT_DOUBLE_EQ(features.row(0)[kQueryLocationMatchIndex], 1.0);
  // Osaka: same country as Tokyo -> 1/3 by Wu-Palmer.
  EXPECT_NEAR(features.row(1)[kQueryLocationMatchIndex], 1.0 / 3.0, 1e-9);
  // Berlin: different country -> 0.
  EXPECT_DOUBLE_EQ(features.row(3)[kQueryLocationMatchIndex], 0.0);
}

TEST_F(FeatureTest, ProfileLocationFeaturesGatedOffForExplicitQueries) {
  profile_.AddLocationWeight(Tokyo(), 5.0);
  auto context = Context();
  const auto implicit_features = ExtractFeatures(page_, context);
  EXPECT_GT(implicit_features.row(0)[3], 0.0);

  context.query_mentioned_locations = {Berlin()};
  const auto explicit_features = ExtractFeatures(page_, context);
  EXPECT_DOUBLE_EQ(explicit_features.row(0)[3], 0.0);
  EXPECT_DOUBLE_EQ(explicit_features.row(0)[4], 0.0);
}

TEST_F(FeatureTest, GpsProximityFeature) {
  auto context = Context();
  context.gps_position = ontology_.node(Tokyo()).coords;
  const auto features = ExtractFeatures(page_, context);
  EXPECT_NEAR(features.row(0)[kGpsFeatureIndex], 1.0, 0.01);  // At Tokyo.
  EXPECT_GT(features.row(0)[kGpsFeatureIndex],
            features.row(1)[kGpsFeatureIndex]);  // Osaka is ~400 km away.
  EXPECT_GT(features.row(1)[kGpsFeatureIndex],
            features.row(3)[kGpsFeatureIndex]);  // Berlin is ~9000 km away.

  // No GPS -> feature 0.
  const auto no_gps = ExtractFeatures(page_, Context());
  EXPECT_DOUBLE_EQ(no_gps.row(0)[kGpsFeatureIndex], 0.0);
}

TEST_F(FeatureTest, PageDominantLocationWeight) {
  const auto features = ExtractFeatures(page_, Context());
  EXPECT_DOUBLE_EQ(features.row(0)[5], 0.5);  // Tokyo's aggregated weight.
  EXPECT_DOUBLE_EQ(features.row(1)[5], 0.0);  // Osaka not aggregated here.
  EXPECT_DOUBLE_EQ(features.row(0)[6], 1.0);  // Has location, gate open.
}

TEST_F(FeatureTest, ExtractIntoReusesStorage) {
  FeatureBlock block;
  ExtractFeaturesInto(page_, Context(), block);
  const FeatureBlock fresh = ExtractFeatures(page_, Context());
  EXPECT_EQ(block, fresh);
  // A second extraction into the same block (same inputs) is identical.
  ExtractFeaturesInto(page_, Context(), block);
  EXPECT_EQ(block, fresh);
}

TEST(LocationGateTest, SmoothstepShape) {
  EXPECT_DOUBLE_EQ(LocationGate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(LocationGate(0.25), 0.0);
  EXPECT_DOUBLE_EQ(LocationGate(0.55), 1.0);
  EXPECT_DOUBLE_EQ(LocationGate(1.0), 1.0);
  const double mid = LocationGate(0.4);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
  EXPECT_LT(LocationGate(0.3), LocationGate(0.5));
}

TEST(PageLocationDensityTest, CountsLocatedResults) {
  concepts::QueryLocationConcepts locations;
  locations.per_result = {{1}, {}, {2}, {}};
  EXPECT_DOUBLE_EQ(PageLocationDensity(locations), 0.5);
  concepts::QueryLocationConcepts empty;
  EXPECT_DOUBLE_EQ(PageLocationDensity(empty), 0.0);
}

// ---------- Masks and ranking ----------

namespace {

FeatureBlock UniformBlock(int rows, double value) {
  FeatureBlock block(rows);
  for (int i = 0; i < rows; ++i) {
    for (int d = 0; d < kFeatureCount; ++d) block.row(i)[d] = value;
  }
  return block;
}

}  // namespace

TEST(MaskTest, StrategiesMaskTheRightBlocks) {
  std::vector<double> full(kFeatureCount, 1.0);

  auto x = full;
  MaskForStrategy(x, Strategy::kBaseline);
  for (double v : x) EXPECT_EQ(v, 0.0);

  x = full;
  MaskForStrategy(x, Strategy::kContentOnly);
  EXPECT_EQ(x[0], 1.0);
  EXPECT_EQ(x[1], 1.0);
  for (int d = kLocationFeatureBegin; d < kLocationFeatureEnd; ++d) {
    EXPECT_EQ(x[d], 0.0);
  }

  x = full;
  MaskForStrategy(x, Strategy::kLocationOnly);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_EQ(x[1], 0.0);
  EXPECT_EQ(x[kQueryLocationMatchIndex], 1.0);
  EXPECT_EQ(x[kGpsFeatureIndex], 0.0);  // GPS still off.

  x = full;
  MaskForStrategy(x, Strategy::kCombined);
  EXPECT_EQ(x[0], 1.0);
  EXPECT_EQ(x[kGpsFeatureIndex], 0.0);

  x = full;
  MaskForStrategy(x, Strategy::kCombinedGps);
  for (double v : x) EXPECT_EQ(v, 1.0);
}

TEST(MaskTest, BlockMaskMatchesRowMask) {
  FeatureBlock block = UniformBlock(3, 1.0);
  MaskBlockForStrategy(block, Strategy::kContentOnly);
  std::vector<double> row(kFeatureCount, 1.0);
  MaskForStrategy(row, Strategy::kContentOnly);
  for (int i = 0; i < block.rows(); ++i) {
    EXPECT_EQ(block.RowVector(i), row);
  }
}

TEST(RankerTest, BaselineAndUntrainedKeepBackendOrder) {
  const FeatureBlock features = UniformBlock(5, 0.3);
  RankSvm untrained(kFeatureCount);
  const auto order = RankResults(untrained, features, Strategy::kCombined,
                                 RankerOptions{});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  RankSvm trained(kFeatureCount);
  trained.set_weights(std::vector<double>(kFeatureCount, 1.0));
  const auto baseline_order = RankResults(trained, features,
                                          Strategy::kBaseline, RankerOptions{});
  EXPECT_EQ(baseline_order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RankerTest, HigherScoredResultMovesUp) {
  FeatureBlock features(3);
  features.row(2)[kQueryLocationMatchIndex] = 1.0;  // Only result 2 matches.
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[kQueryLocationMatchIndex] = 5.0;
  model.set_weights(weights);
  RankerOptions options;
  options.rank_prior_weight = 0.1;
  const auto order = RankResults(model, features, Strategy::kCombined, options);
  EXPECT_EQ(order[0], 2);
}

TEST(RankerTest, StrongPriorPreservesBackendOrder) {
  FeatureBlock features(3);
  features.row(2)[kQueryLocationMatchIndex] = 0.1;  // Tiny signal.
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[kQueryLocationMatchIndex] = 1.0;
  model.set_weights(weights);
  RankerOptions options;
  options.rank_prior_weight = 10.0;
  const auto order = RankResults(model, features, Strategy::kCombined, options);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(RankerTest, AlphaEndpointsSelectBlocks) {
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[0] = 1.0;                          // Content block.
  weights[kQueryLocationMatchIndex] = 1.0;   // Location block.
  model.set_weights(weights);
  std::vector<double> x(kFeatureCount, 0.0);
  x[0] = 1.0;
  x[kQueryLocationMatchIndex] = 1.0;

  RankerOptions alpha0;
  alpha0.alpha = 0.0;
  // Content only.
  EXPECT_DOUBLE_EQ(BlendedScore(model, x.data(), alpha0), 2.0);
  RankerOptions alpha1;
  alpha1.alpha = 1.0;
  // Location only.
  EXPECT_DOUBLE_EQ(BlendedScore(model, x.data(), alpha1), 2.0);
  RankerOptions alpha_half;
  alpha_half.alpha = 0.5;
  EXPECT_DOUBLE_EQ(BlendedScore(model, x.data(), alpha_half), 2.0);  // Sum.

  // With only the content feature set, alpha=1 zeroes the score.
  std::vector<double> content_only(kFeatureCount, 0.0);
  content_only[0] = 1.0;
  EXPECT_DOUBLE_EQ(BlendedScore(model, content_only.data(), alpha1), 0.0);
  EXPECT_DOUBLE_EQ(BlendedScore(model, content_only.data(), alpha0), 2.0);
}

TEST(RankerTest, ServeScoreAddsRankPrior) {
  RankSvm model(kFeatureCount);
  model.set_weights(std::vector<double>(kFeatureCount, 0.0));
  std::vector<double> x(kFeatureCount, 0.0);
  RankerOptions options;
  options.rank_prior_weight = 1.0;
  EXPECT_DOUBLE_EQ(ServeScore(model, x.data(), 0, options), 1.0);
  EXPECT_DOUBLE_EQ(ServeScore(model, x.data(), 4, options), 0.2);
}


TEST(RankerTest, RankFusionRespectsBlockRankings) {
  // Three results: result 2 best by location block, result 0 best by
  // content block. Fusion with alpha=1 follows the location ranking,
  // alpha=0 the content ranking.
  FeatureBlock features(3);
  features.row(0)[0] = 1.0;                          // Content signal.
  features.row(2)[kQueryLocationMatchIndex] = 1.0;   // Location signal.
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[0] = 1.0;
  weights[kQueryLocationMatchIndex] = 1.0;
  model.set_weights(weights);

  RankerOptions options;
  options.blend_mode = BlendMode::kRankFusion;
  options.rank_prior_weight = 0.01;  // Negligible prior.
  options.alpha = 1.0;
  EXPECT_EQ(RankResults(model, features, Strategy::kCombined, options)[0],
            2);
  options.alpha = 0.0;
  EXPECT_EQ(RankResults(model, features, Strategy::kCombined, options)[0],
            0);
}

TEST(RankerTest, RankFusionIsScaleInvariant) {
  // Multiplying all block scores by a constant must not change the
  // fusion order (unlike the score blend).
  Random rng(3);
  FeatureBlock features(6);
  for (int i = 0; i < features.rows(); ++i) {
    features.row(i)[0] = rng.UniformDouble();
    features.row(i)[kQueryLocationMatchIndex] = rng.UniformDouble();
  }
  RankSvm small(kFeatureCount);
  RankSvm large(kFeatureCount);
  std::vector<double> w(kFeatureCount, 0.0);
  w[0] = 0.3;
  w[kQueryLocationMatchIndex] = 0.7;
  small.set_weights(w);
  for (double& v : w) v *= 100.0;
  large.set_weights(w);

  RankerOptions options;
  options.blend_mode = BlendMode::kRankFusion;
  options.rank_prior_weight = 0.0;
  EXPECT_EQ(RankResults(small, features, Strategy::kCombined, options),
            RankResults(large, features, Strategy::kCombined, options));
}

TEST(StrategyTest, NamesAreUnique) {
  std::set<std::string> names;
  for (Strategy s : {Strategy::kBaseline, Strategy::kContentOnly,
                     Strategy::kLocationOnly, Strategy::kCombined,
                     Strategy::kCombinedGps}) {
    names.insert(StrategyToString(s));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace pws::ranking
