#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include <cmath>

#include "geo/gazetteer.h"
#include "profile/user_profile.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "ranking/ranker.h"

namespace pws::ranking {
namespace {

// ---------- RankSvm ----------

TEST(RankSvmTest, LearnsSeparableSignal) {
  Random rng(1);
  std::vector<TrainingPair> pairs;
  for (int i = 0; i < 400; ++i) {
    TrainingPair pair;
    pair.preferred.assign(4, 0.0);
    pair.other.assign(4, 0.0);
    for (int d = 0; d < 4; ++d) {
      pair.preferred[d] = rng.UniformDouble();
      pair.other[d] = rng.UniformDouble();
    }
    pair.preferred[2] += 0.5;  // Dimension 2 is the signal.
    pairs.push_back(std::move(pair));
  }
  RankSvm model(4);
  EXPECT_FALSE(model.is_trained());
  model.Train(pairs, RankSvmOptions{});
  EXPECT_TRUE(model.is_trained());
  // Signal weight dominates.
  for (int d = 0; d < 4; ++d) {
    if (d != 2) EXPECT_GT(model.weights()[2], std::abs(model.weights()[d]));
  }
  // High pair accuracy.
  int correct = 0;
  for (const auto& pair : pairs) {
    if (model.Score(pair.preferred) > model.Score(pair.other)) ++correct;
  }
  EXPECT_GT(correct, 330);
}

TEST(RankSvmTest, EmptyTrainingIsNoop) {
  RankSvm model(3);
  EXPECT_DOUBLE_EQ(model.Train({}, RankSvmOptions{}), 0.0);
  EXPECT_TRUE(model.is_trained());
  EXPECT_DOUBLE_EQ(model.Score({1.0, 1.0, 1.0}), 0.0);
}

TEST(RankSvmTest, TrainRejectsNonPositiveEpochs) {
  RankSvm model(3);
  RankSvmOptions options;
  options.epochs = 0;
  EXPECT_DEATH(model.Train({}, options), "epochs");
  options.epochs = -2;
  EXPECT_DEATH(model.Train({}, options), "epochs");
}

TEST(RankSvmTest, DeterministicTraining) {
  Random rng(2);
  std::vector<TrainingPair> pairs;
  for (int i = 0; i < 50; ++i) {
    TrainingPair pair;
    pair.preferred = {rng.UniformDouble(), rng.UniformDouble()};
    pair.other = {rng.UniformDouble(), rng.UniformDouble()};
    pairs.push_back(std::move(pair));
  }
  RankSvm a(2);
  RankSvm b(2);
  a.Train(pairs, RankSvmOptions{});
  b.Train(pairs, RankSvmOptions{});
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(RankSvmTest, ScoreRangeSplitsBlocks) {
  RankSvm model(4);
  model.set_weights({1.0, 2.0, 3.0, 4.0});
  const std::vector<double> x = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(model.Score(x), 10.0);
  EXPECT_DOUBLE_EQ(model.ScoreRange(x, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(model.ScoreRange(x, 2, 4), 7.0);
  EXPECT_DOUBLE_EQ(model.ScoreRange(x, 2, 2), 0.0);
}

TEST(RankSvmTest, PriorActsAsInitialWeightsAndRegularizationCenter) {
  RankSvm model(2);
  model.SetPrior({1.5, 0.0});
  EXPECT_TRUE(model.is_trained());
  EXPECT_DOUBLE_EQ(model.Score({1.0, 0.0}), 1.5);
  // Training on pairs that carry no signal leaves weights near the prior
  // (L2 pulls toward it).
  Random rng(3);
  std::vector<TrainingPair> pairs;
  for (int i = 0; i < 100; ++i) {
    TrainingPair pair;
    const double v = rng.UniformDouble();
    pair.preferred = {v, rng.UniformDouble()};
    pair.other = {v, rng.UniformDouble()};  // Dim 0 identical in a pair.
    pairs.push_back(std::move(pair));
  }
  model.Train(pairs, RankSvmOptions{});
  EXPECT_GT(model.weights()[0], 1.0);  // Still anchored near the prior.
}

TEST(RankSvmTest, WeightedPairsMatterMore) {
  // Conflicting pairs: heavy ones say dim0 up, light ones say down.
  std::vector<TrainingPair> pairs;
  for (int i = 0; i < 40; ++i) {
    TrainingPair up;
    up.preferred = {1.0};
    up.other = {0.0};
    up.weight = 3.0;
    pairs.push_back(up);
    TrainingPair down;
    down.preferred = {0.0};
    down.other = {1.0};
    down.weight = 0.5;
    pairs.push_back(down);
  }
  RankSvm model(1);
  model.Train(pairs, RankSvmOptions{});
  EXPECT_GT(model.weights()[0], 0.0);
}

// ---------- Feature extraction ----------

class FeatureTest : public ::testing::Test {
 protected:
  FeatureTest() : ontology_(geo::BuildWorldGazetteer()), profile_(0, &ontology_) {
    page_.query = "test";
    for (int i = 0; i < 4; ++i) {
      backend::SearchResult result;
      result.doc = i;
      result.rank = i;
      result.score = 10.0 - i;
      page_.results.push_back(result);
    }
    terms_ = {{"alpha"}, {"beta"}, {"alpha", "beta"}, {}};
    // All results located -> gate open.
    locations_.per_result = {{Tokyo()}, {Osaka()}, {Tokyo()}, {Berlin()}};
    concepts::LocationConcept tokyo_concept;
    tokyo_concept.location = Tokyo();
    tokyo_concept.doc_count = 2;
    tokyo_concept.weight = 0.5;
    locations_.aggregated.push_back(tokyo_concept);
  }

  geo::LocationId Tokyo() { return ontology_.Lookup("tokyo")[0]; }
  geo::LocationId Osaka() { return ontology_.Lookup("osaka")[0]; }
  geo::LocationId Berlin() { return ontology_.Lookup("berlin")[0]; }

  FeatureContext Context() {
    FeatureContext context;
    context.ontology = &ontology_;
    context.user_profile = &profile_;
    context.content_terms_per_result = &terms_;
    context.query_locations = &locations_;
    return context;
  }

  geo::LocationOntology ontology_;
  profile::UserProfile profile_;
  backend::ResultPage page_;
  std::vector<std::vector<std::string>> terms_;
  concepts::QueryLocationConcepts locations_;
};

TEST_F(FeatureTest, DimensionsAndDeterminism) {
  const auto a = ExtractFeatures(page_, Context());
  const auto b = ExtractFeatures(page_, Context());
  ASSERT_EQ(a.size(), 4u);
  for (const auto& row : a) EXPECT_EQ(row.size(), size_t{kFeatureCount});
  EXPECT_EQ(a, b);
}

TEST_F(FeatureTest, ContentFeaturesReflectProfile) {
  profile_.AddContentWeight("alpha", 4.0);
  const auto features = ExtractFeatures(page_, Context());
  EXPECT_GT(features[0][0], 0.0);   // Has "alpha".
  EXPECT_EQ(features[1][0], 0.0);   // Only "beta" (weight 0).
  EXPECT_GT(features[2][0], 0.0);
  EXPECT_EQ(features[3][0], 0.0);   // No concepts.
  EXPECT_DOUBLE_EQ(features[0][1], 1.0);  // 1/1 concepts positive.
  EXPECT_DOUBLE_EQ(features[2][1], 0.5);  // 1/2 concepts positive.
}

TEST_F(FeatureTest, QueryLocationMatch) {
  auto context = Context();
  context.query_mentioned_locations = {Tokyo()};
  const auto features = ExtractFeatures(page_, context);
  EXPECT_DOUBLE_EQ(features[0][kQueryLocationMatchIndex], 1.0);  // Tokyo doc.
  // Osaka: same country as Tokyo -> 1/3 by Wu-Palmer.
  EXPECT_NEAR(features[1][kQueryLocationMatchIndex], 1.0 / 3.0, 1e-9);
  // Berlin: different country -> 0.
  EXPECT_DOUBLE_EQ(features[3][kQueryLocationMatchIndex], 0.0);
}

TEST_F(FeatureTest, ProfileLocationFeaturesGatedOffForExplicitQueries) {
  profile_.AddLocationWeight(Tokyo(), 5.0);
  auto context = Context();
  const auto implicit_features = ExtractFeatures(page_, context);
  EXPECT_GT(implicit_features[0][3], 0.0);

  context.query_mentioned_locations = {Berlin()};
  const auto explicit_features = ExtractFeatures(page_, context);
  EXPECT_DOUBLE_EQ(explicit_features[0][3], 0.0);
  EXPECT_DOUBLE_EQ(explicit_features[0][4], 0.0);
}

TEST_F(FeatureTest, GpsProximityFeature) {
  auto context = Context();
  context.gps_position = ontology_.node(Tokyo()).coords;
  const auto features = ExtractFeatures(page_, context);
  EXPECT_NEAR(features[0][kGpsFeatureIndex], 1.0, 0.01);  // At Tokyo.
  EXPECT_GT(features[0][kGpsFeatureIndex],
            features[1][kGpsFeatureIndex]);  // Osaka is ~400 km away.
  EXPECT_GT(features[1][kGpsFeatureIndex],
            features[3][kGpsFeatureIndex]);  // Berlin is ~9000 km away.

  // No GPS -> feature 0.
  const auto no_gps = ExtractFeatures(page_, Context());
  EXPECT_DOUBLE_EQ(no_gps[0][kGpsFeatureIndex], 0.0);
}

TEST_F(FeatureTest, PageDominantLocationWeight) {
  const auto features = ExtractFeatures(page_, Context());
  EXPECT_DOUBLE_EQ(features[0][5], 0.5);  // Tokyo's aggregated weight.
  EXPECT_DOUBLE_EQ(features[1][5], 0.0);  // Osaka not aggregated here.
  EXPECT_DOUBLE_EQ(features[0][6], 1.0);  // Has location, gate open.
}

TEST(LocationGateTest, SmoothstepShape) {
  EXPECT_DOUBLE_EQ(LocationGate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(LocationGate(0.25), 0.0);
  EXPECT_DOUBLE_EQ(LocationGate(0.55), 1.0);
  EXPECT_DOUBLE_EQ(LocationGate(1.0), 1.0);
  const double mid = LocationGate(0.4);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
  EXPECT_LT(LocationGate(0.3), LocationGate(0.5));
}

TEST(PageLocationDensityTest, CountsLocatedResults) {
  concepts::QueryLocationConcepts locations;
  locations.per_result = {{1}, {}, {2}, {}};
  EXPECT_DOUBLE_EQ(PageLocationDensity(locations), 0.5);
  concepts::QueryLocationConcepts empty;
  EXPECT_DOUBLE_EQ(PageLocationDensity(empty), 0.0);
}

// ---------- Masks and ranking ----------

TEST(MaskTest, StrategiesMaskTheRightBlocks) {
  std::vector<double> full(kFeatureCount, 1.0);

  auto x = full;
  MaskForStrategy(x, Strategy::kBaseline);
  for (double v : x) EXPECT_EQ(v, 0.0);

  x = full;
  MaskForStrategy(x, Strategy::kContentOnly);
  EXPECT_EQ(x[0], 1.0);
  EXPECT_EQ(x[1], 1.0);
  for (int d = kLocationFeatureBegin; d < kLocationFeatureEnd; ++d) {
    EXPECT_EQ(x[d], 0.0);
  }

  x = full;
  MaskForStrategy(x, Strategy::kLocationOnly);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_EQ(x[1], 0.0);
  EXPECT_EQ(x[kQueryLocationMatchIndex], 1.0);
  EXPECT_EQ(x[kGpsFeatureIndex], 0.0);  // GPS still off.

  x = full;
  MaskForStrategy(x, Strategy::kCombined);
  EXPECT_EQ(x[0], 1.0);
  EXPECT_EQ(x[kGpsFeatureIndex], 0.0);

  x = full;
  MaskForStrategy(x, Strategy::kCombinedGps);
  for (double v : x) EXPECT_EQ(v, 1.0);
}

TEST(RankerTest, BaselineAndUntrainedKeepBackendOrder) {
  FeatureMatrix features(5, std::vector<double>(kFeatureCount, 0.3));
  RankSvm untrained(kFeatureCount);
  const auto order = RankResults(untrained, features, Strategy::kCombined,
                                 RankerOptions{});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  RankSvm trained(kFeatureCount);
  trained.set_weights(std::vector<double>(kFeatureCount, 1.0));
  const auto baseline_order = RankResults(trained, features,
                                          Strategy::kBaseline, RankerOptions{});
  EXPECT_EQ(baseline_order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RankerTest, HigherScoredResultMovesUp) {
  FeatureMatrix features(3, std::vector<double>(kFeatureCount, 0.0));
  features[2][kQueryLocationMatchIndex] = 1.0;  // Only result 2 matches.
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[kQueryLocationMatchIndex] = 5.0;
  model.set_weights(weights);
  RankerOptions options;
  options.rank_prior_weight = 0.1;
  const auto order = RankResults(model, features, Strategy::kCombined, options);
  EXPECT_EQ(order[0], 2);
}

TEST(RankerTest, StrongPriorPreservesBackendOrder) {
  FeatureMatrix features(3, std::vector<double>(kFeatureCount, 0.0));
  features[2][kQueryLocationMatchIndex] = 0.1;  // Tiny signal.
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[kQueryLocationMatchIndex] = 1.0;
  model.set_weights(weights);
  RankerOptions options;
  options.rank_prior_weight = 10.0;
  const auto order = RankResults(model, features, Strategy::kCombined, options);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(RankerTest, AlphaEndpointsSelectBlocks) {
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[0] = 1.0;                          // Content block.
  weights[kQueryLocationMatchIndex] = 1.0;   // Location block.
  model.set_weights(weights);
  std::vector<double> x(kFeatureCount, 0.0);
  x[0] = 1.0;
  x[kQueryLocationMatchIndex] = 1.0;

  RankerOptions alpha0;
  alpha0.alpha = 0.0;
  EXPECT_DOUBLE_EQ(BlendedScore(model, x, alpha0), 2.0);  // Content only.
  RankerOptions alpha1;
  alpha1.alpha = 1.0;
  EXPECT_DOUBLE_EQ(BlendedScore(model, x, alpha1), 2.0);  // Location only.
  RankerOptions alpha_half;
  alpha_half.alpha = 0.5;
  EXPECT_DOUBLE_EQ(BlendedScore(model, x, alpha_half), 2.0);  // Sum.

  // With only the content feature set, alpha=1 zeroes the score.
  std::vector<double> content_only(kFeatureCount, 0.0);
  content_only[0] = 1.0;
  EXPECT_DOUBLE_EQ(BlendedScore(model, content_only, alpha1), 0.0);
  EXPECT_DOUBLE_EQ(BlendedScore(model, content_only, alpha0), 2.0);
}

TEST(RankerTest, ServeScoreAddsRankPrior) {
  RankSvm model(kFeatureCount);
  model.set_weights(std::vector<double>(kFeatureCount, 0.0));
  std::vector<double> x(kFeatureCount, 0.0);
  RankerOptions options;
  options.rank_prior_weight = 1.0;
  EXPECT_DOUBLE_EQ(ServeScore(model, x, 0, options), 1.0);
  EXPECT_DOUBLE_EQ(ServeScore(model, x, 4, options), 0.2);
}


TEST(RankerTest, RankFusionRespectsBlockRankings) {
  // Three results: result 2 best by location block, result 0 best by
  // content block. Fusion with alpha=1 follows the location ranking,
  // alpha=0 the content ranking.
  FeatureMatrix features(3, std::vector<double>(kFeatureCount, 0.0));
  features[0][0] = 1.0;                          // Content signal.
  features[2][kQueryLocationMatchIndex] = 1.0;   // Location signal.
  RankSvm model(kFeatureCount);
  std::vector<double> weights(kFeatureCount, 0.0);
  weights[0] = 1.0;
  weights[kQueryLocationMatchIndex] = 1.0;
  model.set_weights(weights);

  RankerOptions options;
  options.blend_mode = BlendMode::kRankFusion;
  options.rank_prior_weight = 0.01;  // Negligible prior.
  options.alpha = 1.0;
  EXPECT_EQ(RankResults(model, features, Strategy::kCombined, options)[0],
            2);
  options.alpha = 0.0;
  EXPECT_EQ(RankResults(model, features, Strategy::kCombined, options)[0],
            0);
}

TEST(RankerTest, RankFusionIsScaleInvariant) {
  // Multiplying all block scores by a constant must not change the
  // fusion order (unlike the score blend).
  Random rng(3);
  FeatureMatrix features(6, std::vector<double>(kFeatureCount, 0.0));
  for (auto& x : features) {
    x[0] = rng.UniformDouble();
    x[kQueryLocationMatchIndex] = rng.UniformDouble();
  }
  RankSvm small(kFeatureCount);
  RankSvm large(kFeatureCount);
  std::vector<double> w(kFeatureCount, 0.0);
  w[0] = 0.3;
  w[kQueryLocationMatchIndex] = 0.7;
  small.set_weights(w);
  for (double& v : w) v *= 100.0;
  large.set_weights(w);

  RankerOptions options;
  options.blend_mode = BlendMode::kRankFusion;
  options.rank_prior_weight = 0.0;
  EXPECT_EQ(RankResults(small, features, Strategy::kCombined, options),
            RankResults(large, features, Strategy::kCombined, options));
}

TEST(StrategyTest, NamesAreUnique) {
  std::set<std::string> names;
  for (Strategy s : {Strategy::kBaseline, Strategy::kContentOnly,
                     Strategy::kLocationOnly, Strategy::kCombined,
                     Strategy::kCombinedGps}) {
    names.insert(StrategyToString(s));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace pws::ranking
