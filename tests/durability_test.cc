// Engine-level crash-recovery properties (DESIGN.md §12): restart
// equivalence (snapshot + WAL replay reproduces bit-identical rankings
// and model weights), and crash-point sweeps over every injected fault
// boundary of SaveState and of a WAL append.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "io/wal.h"
#include "obs/metrics.h"
#include "util/file_util.h"

namespace pws::core {
namespace {

// Removes a sharded WAL: the bare path (shard 0) plus every possible
// `.s<k>` shard file, so no stale shard records leak into the next run.
void RemoveWalFiles(const std::string& wal_path) {
  std::remove(wal_path.c_str());
  for (int i = 1; i < 64; ++i) {
    std::remove((wal_path + ".s" + std::to_string(i)).c_str());
  }
}

class DurabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 17;
    config.num_topics = 6;
    config.corpus.num_documents = 1500;
    config.users.num_users = 4;
    config.users.gps_fraction = 1.0;
    config.queries.queries_per_class = 8;
    config.backend.page_size = 12;
    world_ = new eval::World(config);
    // A fixed probe set of real generated queries (they have results).
    for (int i = 0; i < 6; ++i) {
      queries_.push_back(world_->queries()[i * 3].text);
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    queries_.clear();
  }

  void TearDown() override {
    FileFaultInjector::Global().Disarm();
    std::remove(snapshot_path_.c_str());
    RemoveWalFiles(wal_path_);
  }

  void NewPaths(const std::string& tag) {
    snapshot_path_ = ::testing::TempDir() + "/pws_state_" + tag;
    wal_path_ = snapshot_path_ + ".wal";
    std::remove(snapshot_path_.c_str());
    RemoveWalFiles(wal_path_);
  }

  static std::unique_ptr<PwsEngine> NewEngine() {
    EngineOptions options;
    options.strategy = ranking::Strategy::kCombinedGps;
    return std::make_unique<PwsEngine>(&world_->search_backend(),
                                       &world_->ontology(), options);
  }

  /// A full-page record clicking shown position `position` with an
  /// arbitrary-precision dwell (exercises the exact dwell round trip).
  static click::ClickRecord MakeClick(const PersonalizedPage& page,
                                      int position, double dwell) {
    click::ClickRecord record;
    for (size_t j = 0; j < page.order.size(); ++j) {
      click::Interaction interaction;
      interaction.doc = page.backend_page().results[page.order[j]].doc;
      interaction.rank = static_cast<int>(j);
      if (static_cast<int>(j) == position) {
        interaction.clicked = true;
        interaction.dwell_units = dwell;
        interaction.last_click_in_session = true;
      }
      record.interactions.push_back(interaction);
    }
    return record;
  }

  /// Serves `query` for `user` and clicks shown position `position`.
  static void Click(PwsEngine& engine, click::UserId user,
                    const std::string& query, int position, double dwell) {
    const PersonalizedPage page = engine.Serve(user, query);
    ASSERT_GT(page.order.size(), static_cast<size_t>(position));
    engine.Observe(user, page, MakeClick(page, position, dwell));
  }

  /// Everything restart equivalence promises to preserve, bit for bit.
  struct Signature {
    std::vector<std::vector<int>> orders;
    std::vector<std::vector<double>> weights;
    std::vector<int> pair_counts;
    std::vector<std::pair<std::string, double>> top_concepts;

    bool operator==(const Signature& other) const {
      return orders == other.orders && weights == other.weights &&
             pair_counts == other.pair_counts &&
             top_concepts == other.top_concepts;
    }
  };

  static Signature Capture(PwsEngine& engine,
                           const std::vector<click::UserId>& users) {
    Signature signature;
    for (const click::UserId user : users) {
      for (const std::string& query : queries_) {
        signature.orders.push_back(engine.Serve(user, query).order);
      }
      signature.weights.push_back(engine.user_model(user).weights());
      signature.pair_counts.push_back(engine.training_pair_count(user));
      for (const auto& entry : engine.user_profile(user).TopContentConcepts(5)) {
        signature.top_concepts.push_back(entry);
      }
    }
    return signature;
  }

  /// The standard driving script: GPS-seeded profiles, clicks at varied
  /// positions with noisy dwells, a per-user retrain, a snapshot in the
  /// middle, more clicks, and a full training sweep — every WAL record
  /// type ('C', 'T', 'A') and both sides of the snapshot cut.
  void DriveFull(PwsEngine& engine) {
    // Positions travel in the snapshot, not the WAL: attach before the
    // traffic, snapshot after (the documented mobile recovery contract).
    engine.AttachGpsTrace(0, world_->users()[0].gps_trace);
    engine.AttachGpsTrace(1, world_->users()[1].gps_trace);
    Click(engine, 0, queries_[0], 1, 137.25);
    Click(engine, 0, queries_[1], 2, 93.0625);
    Click(engine, 1, queries_[2], 3, 210.15625);
    engine.TrainUser(0);
    ASSERT_TRUE(engine.SaveState(snapshot_path_).ok());
    Click(engine, 0, queries_[3], 2, 301.0078125);
    Click(engine, 1, queries_[4], 1, 88.3125);
    engine.TrainAllUsers();
    Click(engine, 1, queries_[5], 2, 154.203125);
  }

  static eval::World* world_;
  static std::vector<std::string> queries_;
  std::string snapshot_path_;
  std::string wal_path_;
};

eval::World* DurabilityTest::world_ = nullptr;
std::vector<std::string> DurabilityTest::queries_;

TEST_F(DurabilityTest, RestartRoundTripIsBitIdentical) {
  NewPaths("roundtrip");
  Signature before;
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    DriveFull(*engine);
    before = Capture(*engine, {0, 1});
    // Engine destroyed without a final save: the post-snapshot events
    // exist only in the WAL, exactly the kill-and-restart scenario.
  }
  auto restored = NewEngine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  const Signature after = Capture(*restored, {0, 1});
  EXPECT_EQ(before.orders, after.orders);
  EXPECT_EQ(before.weights, after.weights);
  EXPECT_EQ(before.pair_counts, after.pair_counts);
  EXPECT_EQ(before.top_concepts, after.top_concepts);
}

TEST_F(DurabilityTest, CrashBeforeFirstSnapshotRecoversFromWalAlone) {
  NewPaths("nosnap");
  Signature before;
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    Click(*engine, 1, queries_[1], 2, 93.0625);
    engine->TrainUser(0);
    before = Capture(*engine, {0, 1});
  }
  auto restored = NewEngine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  // The snapshot file never existed; recovery is pure WAL replay.
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  EXPECT_TRUE(Capture(*restored, {0, 1}) == before);
}

TEST_F(DurabilityTest, EventsAfterRestartedSnapshotSurviveNextCrash) {
  NewPaths("reseq");
  // Run A: traffic, snapshot (truncates the WAL), clean exit.
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    Click(*engine, 1, queries_[1], 2, 93.0625);
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
  }
  // Run B: restores (which must raise the empty WAL's sequence counter
  // past the snapshot's high-water mark), observes more traffic, and
  // crashes before any save.
  Signature before;
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    ASSERT_TRUE(engine->RestoreState(snapshot_path_).ok());
    Click(*engine, 0, queries_[2], 3, 210.15625);
    Click(*engine, 1, queries_[3], 1, 88.3125);
    engine->TrainUser(0);
    before = Capture(*engine, {0, 1});
  }
  // Run C: run B's records carry sequence numbers above the snapshot
  // mark, so replay applies them instead of skipping them as
  // already-folded-in.
  auto restored = NewEngine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  EXPECT_TRUE(Capture(*restored, {0, 1}) == before)
      << "post-restart WAL records were skipped as already-applied";
}

TEST_F(DurabilityTest, RestoringForeignSnapshotOverLiveWalIsRefused) {
  NewPaths("lineage");
  // Engine A: its own WAL and snapshot (the snapshot records WAL A's
  // lineage id).
  const std::string foreign_snapshot = snapshot_path_ + ".foreign";
  const std::string foreign_wal = foreign_snapshot + ".wal";
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(foreign_wal).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    ASSERT_TRUE(engine->SaveState(foreign_snapshot).ok());
  }
  // Engine B: a different WAL with its own un-snapshotted tail.
  auto engine = NewEngine();
  ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
  Click(*engine, 0, queries_[1], 2, 93.0625);
  const Signature before = Capture(*engine, {0, 1});

  // `load <other-path>` used to load A's snapshot and then replay B's
  // WAL tail on top of it — state from two unrelated histories spliced
  // together because sequence numbers happened to line up. The lineage
  // id pairs each snapshot with its WAL; a mismatch is refused before
  // any state is touched.
  const Status status = engine->RestoreState(foreign_snapshot);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status;
  EXPECT_TRUE(Capture(*engine, {0, 1}) == before)
      << "refused restore must leave the engine untouched";

  // Restoring A's snapshot alongside A's own WAL stays legal.
  auto fresh = NewEngine();
  ASSERT_TRUE(fresh->EnableWal(foreign_wal).ok());
  EXPECT_TRUE(fresh->RestoreState(foreign_snapshot).ok());

  std::remove(foreign_snapshot.c_str());
  RemoveWalFiles(foreign_wal);
}

TEST_F(DurabilityTest, RestoreWithDifferentWalShardCountIsRefused) {
  NewPaths("shardcount");
  // Snapshot taken with the default shard fan-out: its lineage line
  // records one id per open WAL shard.
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
    Click(*engine, 1, queries_[1], 2, 93.0625);  // Tail lives in the WALs.
  }
  // A process restarted with fewer WAL shards would replay only part of
  // the tail (the unopened shard files' records silently vanish). The
  // shard-count check refuses before any state is touched.
  EngineOptions narrow;
  narrow.strategy = ranking::Strategy::kCombinedGps;
  narrow.wal_shards = 2;
  auto engine = std::make_unique<PwsEngine>(&world_->search_backend(),
                                            &world_->ontology(), narrow);
  ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
  const Status status = engine->RestoreState(snapshot_path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status;

  // The same shard count restores cleanly, tail included.
  auto fresh = NewEngine();
  ASSERT_TRUE(fresh->EnableWal(wal_path_).ok());
  EXPECT_TRUE(fresh->RestoreState(snapshot_path_).ok());
  EXPECT_EQ(fresh->registered_user_count(), 2);
}

TEST_F(DurabilityTest, QueriesWithLineBreaksSurviveRestart) {
  NewPaths("linebreaks");
  // Queries are arbitrary caller-supplied strings; line breaks and
  // backslashes must not tear the line-based snapshot or WAL payloads.
  const std::string tricky = queries_[0] + "\nsecond \\line\r";
  Signature before;
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, tricky, 1, 137.25);  // Query lands in snapshot Q line.
    engine->TrainUser(0);
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
    Click(*engine, 0, tricky, 2, 93.0625);  // Query lands in WAL payload.
    before = Capture(*engine, {0});
  }
  auto restored = NewEngine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  EXPECT_TRUE(Capture(*restored, {0}) == before);
}

TEST_F(DurabilityTest, SaveStateCrashSweepAlwaysRecoversPreCrashState) {
  // Rehearsal: count the fault boundaries one SaveState crosses (the
  // engine shape does not change the count).
  int ops = 0;
  {
    NewPaths("save_rehearsal");
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    FileFaultInjector::Global().Arm(-1, /*crash=*/false);
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
    ops = FileFaultInjector::Global().ops_seen();
    FileFaultInjector::Global().Disarm();
    ASSERT_GT(ops, 0);
    std::remove(snapshot_path_.c_str());
    RemoveWalFiles(wal_path_);
  }

  for (int fail_at = 0; fail_at < ops; ++fail_at) {
    NewPaths("save_sweep_" + std::to_string(fail_at));
    Signature before;
    {
      auto engine = NewEngine();
      ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
      Click(*engine, 0, queries_[0], 1, 137.25);
      Click(*engine, 1, queries_[1], 2, 93.0625);
      engine->TrainUser(0);
      ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
      Click(*engine, 0, queries_[2], 3, 210.15625);
      engine->TrainAllUsers();
      before = Capture(*engine, {0, 1});
      // SaveState does not change logical state, so whatever boundary
      // the crash lands on — tmp write, fsync, rename, directory sync,
      // WAL truncation — recovery must land exactly here.
      FileFaultInjector::Global().Arm(fail_at, /*crash=*/true,
                                      /*partial_write_fraction=*/0.4);
      const Status status = engine->SaveState(snapshot_path_);
      (void)status;  // May fail or succeed depending on the boundary.
      FileFaultInjector::Global().Disarm();
    }
    auto restored = NewEngine();
    ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
    ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok())
        << "crash at boundary " << fail_at;
    EXPECT_TRUE(Capture(*restored, {0, 1}) == before)
        << "state diverged after crash at boundary " << fail_at;
    std::remove(snapshot_path_.c_str());
    RemoveWalFiles(wal_path_);
  }
}

TEST_F(DurabilityTest, WalAppendCrashSweepLosesAtMostTheFinalEvent) {
  // References: the state with only the two durable clicks, and the
  // state with the third click as well. A crash during the third
  // append may legitimately land on either (the frame is torn, or it
  // was fully written and only the fsync "failed") — never elsewhere.
  Signature without_last;
  Signature with_last;
  {
    NewPaths("append_ref");
    auto engine = NewEngine();
    Click(*engine, 0, queries_[0], 1, 137.25);
    Click(*engine, 1, queries_[1], 2, 93.0625);
    without_last = Capture(*engine, {0, 1});
    Click(*engine, 0, queries_[2], 3, 210.15625);
    with_last = Capture(*engine, {0, 1});
  }
  // One append = frame write + fsync (+ rollback truncate on failure).
  for (int fail_at = 0; fail_at < 2; ++fail_at) {
    NewPaths("append_sweep_" + std::to_string(fail_at));
    {
      auto engine = NewEngine();
      ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
      Click(*engine, 0, queries_[0], 1, 137.25);
      Click(*engine, 1, queries_[1], 2, 93.0625);
      FileFaultInjector::Global().Arm(fail_at, /*crash=*/true,
                                      /*partial_write_fraction=*/0.5);
      Click(*engine, 0, queries_[2], 3, 210.15625);
      FileFaultInjector::Global().Disarm();
    }
    auto restored = NewEngine();
    ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
    ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
    const Signature after = Capture(*restored, {0, 1});
    EXPECT_TRUE(after == without_last || after == with_last)
        << "crash at append boundary " << fail_at
        << " recovered to a state the engine was never in";
    std::remove(snapshot_path_.c_str());
    RemoveWalFiles(wal_path_);
  }
}

TEST_F(DurabilityTest, TornWalTailIsRepairedAndPrefixRecovered) {
  NewPaths("torn");
  Signature before;
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    Click(*engine, 1, queries_[1], 2, 93.0625);
    before = Capture(*engine, {0, 1});
  }
  // A crash mid-append left half a frame at the tail.
  auto contents = ReadFileToString(wal_path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(
      WriteStringToFile(wal_path_, *contents + "half a frame").ok());

  const uint64_t repairs_before = obs::MetricsRegistry::Global()
                                      .GetCounter("wal.open.torn_tail_repairs")
                                      ->Value();
  auto restored = NewEngine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  EXPECT_TRUE(Capture(*restored, {0, 1}) == before);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("wal.open.torn_tail_repairs")
                ->Value(),
            repairs_before);
  // The repaired log keeps accepting appends that the next restart sees.
  Click(*restored, 0, queries_[2], 1, 50.5);
  const auto replay = io::WriteAheadLog::Replay(wal_path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_FALSE(replay->records.empty());
}

TEST_F(DurabilityTest, CorruptSnapshotIsDataLossNotGarbageState) {
  NewPaths("corrupt");
  {
    auto engine = NewEngine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
  }
  auto contents = ReadFileToString(snapshot_path_);
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[corrupted.size() / 2] ^= 0x08;
  ASSERT_TRUE(WriteStringToFile(snapshot_path_, corrupted).ok());

  auto restored = NewEngine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  const Status status = restored->RestoreState(snapshot_path_);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status;
}

TEST_F(DurabilityTest, EntropyStateSurvivesSnapshotRestoreAndDrivesAlpha) {
  // Regression: the snapshot used to drop the engine-global
  // ClickEntropyTracker, and replay skips every WAL record at or below
  // the snapshot's high-water mark — so after save → crash → restore
  // the tracker came back empty and entropy_adaptive_alpha served
  // different blends (and different orders) than the pre-crash engine.
  NewPaths("entropy");
  EngineOptions options;
  options.strategy = ranking::Strategy::kCombined;
  options.entropy_adaptive_alpha = true;
  const auto make_engine = [&] {
    return std::make_unique<PwsEngine>(&world_->search_backend(),
                                       &world_->ontology(), options);
  };
  std::vector<profile::ClickEntropyTracker::QueryClickStats> exported_before;
  std::vector<double> alphas_before;
  std::vector<std::vector<int>> orders_before;
  {
    auto engine = make_engine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    // Concentrated clicks under queries_[0] vs spread clicks under
    // queries_[1]: distinct entropies, so the adaptive rule maps the two
    // probe queries to distinct alphas a fresh tracker cannot reproduce.
    for (int i = 0; i < 4; ++i) Click(*engine, 0, queries_[0], 1, 120.5);
    Click(*engine, 1, queries_[1], 0, 95.25);
    Click(*engine, 1, queries_[1], 5, 80.5);
    Click(*engine, 0, queries_[1], 9, 60.25);
    engine->TrainUser(0);
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
    exported_before = engine->entropy_tracker().Export();
    ASSERT_FALSE(exported_before.empty());
    for (const std::string& query : queries_) {
      const PersonalizedPage page = engine->Serve(0, query);
      alphas_before.push_back(page.alpha_used);
      orders_before.push_back(page.order);
    }
  }
  // Restart. Every WAL click predates the snapshot, so replay skips them
  // all: the snapshot is the only way the entropy counts come back.
  auto restored = make_engine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  const auto exported_after = restored->entropy_tracker().Export();
  ASSERT_EQ(exported_before.size(), exported_after.size());
  for (size_t i = 0; i < exported_before.size(); ++i) {
    EXPECT_EQ(exported_before[i].query_id, exported_after[i].query_id);
    EXPECT_EQ(exported_before[i].clicks, exported_after[i].clicks);
    EXPECT_EQ(exported_before[i].content_clicks,
              exported_after[i].content_clicks);
    EXPECT_EQ(exported_before[i].location_clicks,
              exported_after[i].location_clicks);
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    const PersonalizedPage page = restored->Serve(0, queries_[i]);
    EXPECT_EQ(alphas_before[i], page.alpha_used) << "probe query " << i;
    EXPECT_EQ(orders_before[i], page.order) << "probe query " << i;
  }
}

TEST_F(DurabilityTest, SessionAndBanditStateSurviveRestart) {
  // The per-user session window and bandit arm statistics ride the same
  // snapshot + WAL-replay contract as profiles and models: a restart
  // must reproduce the pre-crash serve decisions (arm choice, alpha,
  // session-boosted order) bit for bit.
  NewPaths("sessband");
  EngineOptions options;
  options.strategy = ranking::Strategy::kSession;
  options.bandit.enabled = true;
  const auto make_engine = [&] {
    return std::make_unique<PwsEngine>(&world_->search_backend(),
                                       &world_->ontology(), options);
  };
  std::vector<double> alphas_before;
  std::vector<int> arms_before;
  std::vector<std::vector<int>> orders_before;
  {
    auto engine = make_engine();
    ASSERT_TRUE(engine->EnableWal(wal_path_).ok());
    Click(*engine, 0, queries_[0], 1, 137.25);
    Click(*engine, 0, queries_[1], 2, 93.0625);
    Click(*engine, 1, queries_[2], 3, 210.15625);
    engine->TrainUser(0);
    // Snapshot mid-stream: pre-snapshot state must come from the
    // snapshot sections, post-snapshot clicks from WAL replay.
    ASSERT_TRUE(engine->SaveState(snapshot_path_).ok());
    Click(*engine, 0, queries_[3], 2, 301.0078125);
    Click(*engine, 1, queries_[4], 1, 88.3125);
    for (const std::string& query : queries_) {
      const PersonalizedPage page = engine->Serve(0, query);
      alphas_before.push_back(page.alpha_used);
      arms_before.push_back(page.bandit_arm);
      orders_before.push_back(page.order);
    }
  }
  auto restored = make_engine();
  ASSERT_TRUE(restored->EnableWal(wal_path_).ok());
  ASSERT_TRUE(restored->RestoreState(snapshot_path_).ok());
  for (size_t i = 0; i < queries_.size(); ++i) {
    const PersonalizedPage page = restored->Serve(0, queries_[i]);
    EXPECT_EQ(alphas_before[i], page.alpha_used) << "probe query " << i;
    EXPECT_EQ(arms_before[i], page.bandit_arm) << "probe query " << i;
    EXPECT_EQ(orders_before[i], page.order) << "probe query " << i;
  }
}

TEST_F(DurabilityTest, RestoreWithoutSnapshotOrWalIsEmpty) {
  NewPaths("empty");
  auto engine = NewEngine();
  ASSERT_TRUE(engine->RestoreState(snapshot_path_).ok());
  EXPECT_EQ(engine->registered_user_count(), 0);
  EXPECT_FALSE(engine->wal_enabled());
}

}  // namespace
}  // namespace pws::core
