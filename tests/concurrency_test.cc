// Concurrency layer: thread pool semantics, the bounded sharded
// query-analysis cache, and the determinism contract of the parallel
// evaluation harness (parallel runs must be bit-identical to the
// sequential path). Also the ThreadSanitizer exercise target: the
// concurrent-Serve tests drive one shared engine from many threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/inverted_index.h"
#include "core/pws_engine.h"
#include "eval/harness.h"
#include "eval/world.h"
#include "io/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ranking/features.h"
#include "text/stem_cache.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/sharded_lru.h"
#include "util/thread_pool.h"

namespace pws {
namespace {

// Removes a sharded WAL: the bare path (shard 0) plus every possible
// `.s<k>` shard file. Tests that only remove the bare path leak shard
// files into the next run, whose replay then sees stale records.
void RemoveWalFiles(const std::string& wal_path) {
  std::remove(wal_path.c_str());
  for (int i = 1; i < 64; ++i) {
    std::remove((wal_path + ".s" + std::to_string(i)).c_str());
  }
}

// ---------- ThreadPool / ParallelFor ----------

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool waits for everything already queued.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitDuringShutdownIsRejectedNotAborted) {
  // A task that keeps submitting while the destructor runs used to trip
  // PWS_CHECK and abort the whole process — fatal for a server whose
  // readers race Stop(). Now the racing Submit comes back as a future
  // carrying std::runtime_error and the submitter sheds gracefully.
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* raw = pool.get();
  std::atomic<bool> destructor_started{false};
  std::atomic<bool> saw_rejection{false};
  auto probe = pool->Submit([&] {
    // Wait until ~ThreadPool is under way, then keep submitting until a
    // rejection is observed. The destructor cannot finish while this
    // task runs, and tasks it queues before the cutover still execute
    // (drain semantics), so the loop terminates exactly at the cutover.
    while (!destructor_started.load()) std::this_thread::yield();
    while (!saw_rejection.load()) {
      auto future = raw->Submit([] {});
      if (future.wait_for(std::chrono::milliseconds(0)) ==
          std::future_status::ready) {
        try {
          future.get();
        } catch (const std::runtime_error&) {
          saw_rejection.store(true);
        }
      }
      std::this_thread::yield();
    }
  });
  destructor_started.store(true);
  pool.reset();  // Joins the probe task; must not abort.
  EXPECT_TRUE(saw_rejection.load());
  EXPECT_NO_THROW(probe.get());
}

TEST(ResolveThreadCountTest, PositivePassesThroughZeroMeansHardware) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(5), 5);
  EXPECT_GE(ResolveThreadCount(0), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<int> hits(257, 0);
    ParallelFor(threads, static_cast<int>(hits.size()),
                [&](int i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, PropagatesFirstExceptionByIndex) {
  EXPECT_THROW(ParallelFor(4, 16,
                           [](int i) {
                             if (i % 3 == 0) throw std::runtime_error("bad");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, PropagatesTheLowestThrowingIndexExactly) {
  // Chunks are contiguous and ascending and futures drain in chunk
  // order, so the surfaced exception is still the one from the lowest
  // throwing index — identical to the old one-task-per-index behaviour.
  std::string surfaced;
  try {
    ParallelFor(4, 100, [](int i) {
      if (i >= 13) throw std::runtime_error(std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    surfaced = e.what();
  }
  EXPECT_EQ(surfaced, "13");
}

TEST(ParallelForTest, SubmitsOneTaskPerWorkerNotPerIndex) {
  // The old implementation built a fresh pool and one future per index
  // — 100k index sweeps paid 100k packaged_task allocations. Chunking
  // submits at most one task per worker.
  auto* tasks = obs::MetricsRegistry::Global().GetCounter("threadpool.tasks");
  const uint64_t before = tasks->Value();
  std::atomic<int> sum{0};
  ParallelFor(4, 10000, [&](int i) { sum += i % 7; });
  const uint64_t delta = tasks->Value() - before;
  EXPECT_LE(delta, 4u);
  EXPECT_GE(delta, 1u);
  int expected = 0;
  for (int i = 0; i < 10000; ++i) expected += i % 7;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelForTest, PoolOverloadCoversEveryIndexOnSharedPool) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  ParallelFor(pool, static_cast<int>(hits.size()), [&](int i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
  // The pool survives for further use (ParallelFor did not tear it down).
  auto future = pool.Submit([] {});
  EXPECT_NO_THROW(future.get());
}

// ---------- ShardedLruCache ----------

TEST(ShardedLruCacheTest, GetOrComputeCachesValues) {
  ShardedLruCache<std::string, int> cache(/*capacity=*/8, /*num_shards=*/2);
  int computations = 0;
  auto compute = [&computations] {
    ++computations;
    return 42;
  };
  EXPECT_EQ(cache.GetOrCompute("a", compute), 42);
  EXPECT_EQ(cache.GetOrCompute("a", compute), 42);
  EXPECT_EQ(computations, 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedAndCounts) {
  // One shard makes the LRU order observable.
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_TRUE(cache.Get(1).has_value());  // 1 is now most recent.
  cache.Put(3, 30);                       // Evicts 2.
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCacheTest, SizeStaysBoundedUnderChurn) {
  ShardedLruCache<int, int> cache(/*capacity=*/16, /*num_shards=*/4);
  for (int i = 0; i < 1000; ++i) cache.Put(i, i);
  EXPECT_LE(cache.size(), cache.capacity() + 3);  // ceil rounding per shard.
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardedLruCacheTest, ConcurrentGetOrComputeIsConsistent) {
  ShardedLruCache<int, int> cache(/*capacity=*/64, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &mismatch, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 31 + i) % 128;  // Overlapping key sets + churn.
        const int value = cache.GetOrCompute(key, [key] { return key * 7; });
        if (value != key * 7) mismatch = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_LE(cache.size(), cache.capacity() + 8);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

// ---------- Retrieval scratch arena + stemming memo under contention ----------

TEST(RetrievalConcurrencyTest, ConcurrentTopKOnSharedIndexesIsDeterministic) {
  // TopK reuses an epoch-stamped per-thread scratch arena; this races
  // many threads over TWO shared indexes (each thread alternates, so one
  // thread's scratch serves differently-sized indexes back to back) and
  // checks every result against a sequential reference. TSan builds this
  // binary, so any scratch-arena race is caught here.
  const auto build_corpus = [](int num_docs, int salt) {
    corpus::Corpus corpus;
    const std::vector<std::string> pool = {"alpha", "beta", "gamma", "delta",
                                           "lake", "tower", "park", "museum"};
    for (int d = 0; d < num_docs; ++d) {
      corpus::Document doc;
      doc.id = d;
      doc.title = pool[(d + salt) % pool.size()] + " " +
                  pool[(d * 3 + salt) % pool.size()];
      doc.body = pool[d % pool.size()] + " " + pool[(d * 7 + salt) %
                                                    pool.size()] +
                 " " + pool[(d * 5) % pool.size()];
      doc.url = "http://x/" + std::to_string(d);
      doc.topic_mixture_truth = {1.0};
      doc.primary_topic_truth = 0;
      corpus.Add(doc);
    }
    return corpus;
  };
  const corpus::Corpus corpus_a = build_corpus(400, 0);
  const corpus::Corpus corpus_b = build_corpus(37, 3);
  const backend::InvertedIndex index_a(&corpus_a);
  const backend::InvertedIndex index_b(&corpus_b);

  const std::vector<std::string> queries = {"alpha", "lake tower",
                                            "park museum gamma", "beta delta"};
  std::vector<std::vector<backend::ScoredDoc>> expected_a, expected_b;
  for (const auto& q : queries) {
    expected_a.push_back(
        index_a.TopKScored(index_a.Analyze(q).term_ids, 10, {}));
    expected_b.push_back(
        index_b.TopKScored(index_b.Analyze(q).term_ids, 10, {}));
  }

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const size_t q = (t + i) % queries.size();
        const auto& index = (i % 2 == 0) ? index_a : index_b;
        const auto& expected = (i % 2 == 0) ? expected_a[q] : expected_b[q];
        const auto got =
            index.TopKScored(index.Analyze(queries[q]).term_ids, 10, {});
        if (got.size() != expected.size()) {
          mismatch = true;
          continue;
        }
        for (size_t r = 0; r < got.size(); ++r) {
          if (got[r].doc != expected[r].doc ||
              got[r].score != expected[r].score) {
            mismatch = true;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(RetrievalConcurrencyTest, ConcurrentBlockMaxAndExhaustiveAgree) {
  // Races the two explicit top-k paths (block-max WAND with its
  // per-thread cursor scratch, and exhaustive block-batched scoring)
  // over one shared multi-block index. Every thread checks exact
  // agreement with a sequential reference; TSan covers the scratch.
  corpus::Corpus corpus;
  const std::vector<std::string> pool = {"alpha", "beta", "gamma", "delta",
                                         "lake", "tower", "park", "museum"};
  for (int d = 0; d < 2000; ++d) {
    corpus::Document doc;
    doc.id = d;
    doc.title = pool[d % pool.size()] + " " + pool[(d * 3) % pool.size()];
    doc.body = pool[d % pool.size()] + " " + pool[(d * 7 + 1) % pool.size()];
    // Heavy-tf outliers give block maxima variance so pruning engages.
    if (d % 61 == 7) {
      for (int r = 0; r < 20; ++r) doc.body += " " + pool[d % pool.size()];
    }
    doc.url = "http://x/" + std::to_string(d);
    doc.topic_mixture_truth = {1.0};
    doc.primary_topic_truth = 0;
    corpus.Add(doc);
  }
  const backend::InvertedIndex index(&corpus);

  const std::vector<std::string> queries = {"alpha", "lake tower",
                                            "park museum gamma", "beta delta"};
  std::vector<std::vector<backend::ScoredDoc>> expected;
  for (const auto& q : queries) {
    expected.push_back(
        index.TopKScoredExhaustive(index.Analyze(q).term_ids, 10, {}));
  }

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        const size_t q = (t + i) % queries.size();
        const auto ids = index.Analyze(queries[q]).term_ids;
        backend::RetrievalStats stats;
        const auto got = (i % 2 == 0)
                             ? index.TopKScoredBlockMax(ids, 10, {}, &stats)
                             : index.TopKScoredExhaustive(ids, 10, {}, &stats);
        if (got.size() != expected[q].size()) {
          mismatch = true;
          continue;
        }
        for (size_t r = 0; r < got.size(); ++r) {
          if (got[r].doc != expected[q][r].doc ||
              got[r].score != expected[q][r].score) {
            mismatch = true;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(RetrievalConcurrencyTest, ConcurrentStemmingTokenizationIsConsistent) {
  // Stemming tokenization goes through the shared global StemCache memo;
  // overlapping word sets from many threads race its shards (and its
  // wholesale flushes, via the fresh suffixed words). Results must match
  // the memo-free path exactly.
  text::TokenizerOptions memo_opts;
  memo_opts.stem = true;
  text::TokenizerOptions direct_opts = memo_opts;
  direct_opts.stem_memo = false;

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const std::string text =
            "running hotels libraries whistler skiing conditions " +
            std::to_string(t) + "unique" + std::to_string(i) + "ingly";
        if (text::Tokenize(text, memo_opts) !=
            text::Tokenize(text, direct_opts)) {
          mismatch = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  const text::StemCacheStats stats = text::StemCache::Global().stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// ---------- Metrics registry under contention ----------

TEST(MetricsRegistryConcurrencyTest, MixedWritersAndSnapshottersAreRaceFree) {
  // The TSan CI job builds exactly this binary, so this test is the
  // sanitizer exercise for the whole obs hot path: racing find-or-create
  // lookups, relaxed counter/gauge/histogram updates, span macros (with
  // an enabled trace collector), and snapshots taken mid-write.
  obs::MetricsRegistry registry;
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  collector.Enable(/*capacity=*/16);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Same names from every thread: lookups race on the map, updates
        // race on the shared atomics.
        registry.GetCounter("tsan.counter")->Increment();
        registry.GetGauge("tsan.gauge")->Add(t % 2 == 0 ? 1 : -1);
        registry.GetHistogram("tsan.hist")->Record(
            static_cast<double>((t * 31 + i) % 1000));
        if (i % 64 == 0) {
          PWS_QUERY_TRACE("tsan-q" + std::to_string(t));
          PWS_SPAN("tsan.span");
        }
      }
    });
  }
  // Snapshot (and dump traces) while every writer is running.
  for (int i = 0; i < 20; ++i) {
    const obs::RegistrySnapshot snapshot = registry.Snapshot();
    const auto it = snapshot.counters.find("tsan.counter");
    if (it != snapshot.counters.end()) {
      EXPECT_LE(it->second,
                static_cast<uint64_t>(kThreads) * kOpsPerThread);
    }
    (void)obs::TraceCollector::Global().Dump();
  }
  for (auto& th : threads) th.join();
  collector.Disable();
  collector.Clear();
  const obs::RegistrySnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.counters.at("tsan.counter"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(final_snapshot.histograms.at("tsan.hist").TotalCount(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(final_snapshot.gauges.at("tsan.gauge").value, 0);
}

TEST(TraceCollectorConcurrencyTest, ConcurrentAddDumpAndToggleAreRaceFree) {
  // Writers push records the way the server's workers do, a reader
  // drains Dump the way the `trace` verb does, and a toggler flips
  // Enable/Disable mid-collection — the lifecycle the serve front end
  // exercises at startup/shutdown while traffic is still in flight.
  obs::TraceCollector collector;
  collector.Enable(/*capacity=*/8);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&collector, w] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        obs::TraceRecord record;
        record.label = "w" + std::to_string(w) + "#" + std::to_string(i);
        record.request_id = static_cast<uint64_t>(w) * kRecordsPerWriter +
                            static_cast<uint64_t>(i) + 1;
        record.total_us = static_cast<uint64_t>(i);
        record.events.push_back({"stage", 0, static_cast<uint64_t>(i)});
        collector.Add(std::move(record));
      }
    });
  }
  std::thread reader([&collector, &stop] {
    while (!stop.load()) {
      const std::vector<obs::TraceRecord> records = collector.Dump();
      EXPECT_LE(records.size(), 8u);
      for (const obs::TraceRecord& record : records) {
        EXPECT_FALSE(record.label.empty());  // Never a torn record.
      }
    }
  });
  std::thread toggler([&collector, &stop] {
    while (!stop.load()) {
      collector.Disable();
      std::this_thread::yield();
      collector.Enable(8);
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  toggler.join();
  collector.Enable(8);  // Known-enabled final state.
  obs::TraceRecord last;
  last.label = "final";
  collector.Add(std::move(last));
  const std::vector<obs::TraceRecord> records = collector.Dump();
  ASSERT_EQ(records.size(), 1u);  // Enable cleared; only "final" resides.
  EXPECT_EQ(records.back().label, "final");
}

TEST(WindowedMetricsConcurrencyTest, RotationUnderContentionIsRaceFree) {
  // Windowed slots rotate lazily on the writer that crosses a slot
  // boundary; racing writers from many synthetic "times" hammer the
  // rotation edge while a snapshotter reads mid-rotation.
  obs::WindowedHistogram hist({10.0, 100.0, 1000.0}, /*num_slots=*/4,
                              /*slot_width_us=*/50);
  obs::SloTracker slo;
  obs::SloTracker::Config config;
  config.target_us = 100.0;
  slo.Configure(config);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, &slo, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int64_t now = static_cast<int64_t>(i) * 7 + t;
        hist.Record(static_cast<double>(i % 500), now);
        slo.RecordRequest(static_cast<double>(i % 200), i % 17 == 0, now);
        if (i % 13 == 0) slo.RecordShed(now);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const obs::HistogramSnapshot snapshot =
        hist.Snapshot(static_cast<int64_t>(i) * 600);
    EXPECT_LE(snapshot.TotalCount(),
              static_cast<uint64_t>(kThreads) * kOpsPerThread);
    (void)slo.Snap(static_cast<int64_t>(i) * 600);
  }
  for (auto& th : threads) th.join();
}

// ---------- Engine + harness fixtures ----------

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 11;
    config.num_topics = 8;
    config.corpus.num_documents = 3000;
    config.users.num_users = 5;
    config.users.gps_fraction = 1.0;
    config.queries.queries_per_class = 10;
    config.backend.page_size = 20;
    world_ = new eval::World(config);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static core::EngineOptions CombinedOptions() {
    core::EngineOptions options;
    options.strategy = ranking::Strategy::kCombined;
    return options;
  }

  static eval::SimulationOptions SimOptions(int threads) {
    eval::SimulationOptions sim;
    sim.seed = 13;
    sim.train_days = 4;
    sim.queries_per_user_day = 3;
    sim.train_every_days = 2;
    sim.test_queries_per_user = 8;
    sim.ctr_samples_per_impression = 2;
    sim.threads = threads;
    return sim;
  }

  static eval::World* world_;
};

eval::World* ConcurrencyTest::world_ = nullptr;

void ExpectMetricsIdentical(const eval::StrategyMetrics& a,
                            const eval::StrategyMetrics& b) {
  EXPECT_EQ(a.avg_rank_relevant, b.avg_rank_relevant);
  EXPECT_EQ(a.mrr, b.mrr);
  EXPECT_EQ(a.ndcg10, b.ndcg10);
  EXPECT_EQ(a.mean_average_precision, b.mean_average_precision);
  EXPECT_EQ(a.precision_at, b.precision_at);
  EXPECT_EQ(a.ctr_at_1, b.ctr_at_1);
  EXPECT_EQ(a.impressions, b.impressions);
  EXPECT_EQ(a.avg_rank_by_class, b.avg_rank_by_class);
  EXPECT_EQ(a.ctr1_by_class, b.ctr1_by_class);
  EXPECT_EQ(a.impressions_by_class, b.impressions_by_class);
}

void ExpectOutcomesIdentical(const std::vector<eval::ImpressionOutcome>& a,
                             const std::vector<eval::ImpressionOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(a[i].query_class, b[i].query_class);
    EXPECT_EQ(a[i].reciprocal_rank, b[i].reciprocal_rank);
    EXPECT_EQ(a[i].ndcg10, b[i].ndcg10);
    EXPECT_EQ(a[i].avg_rank_relevant, b[i].avg_rank_relevant);
  }
}

// ---------- Determinism: parallel harness == sequential harness ----------

TEST_F(ConcurrencyTest, RunAveragedIsBitIdenticalAcrossThreadCounts) {
  const eval::SimulationHarness sequential(world_, SimOptions(1));
  const eval::SimulationHarness parallel(world_, SimOptions(4));
  const eval::StrategyMetrics seq =
      sequential.RunAveraged(CombinedOptions(), 3);
  const eval::StrategyMetrics par = parallel.RunAveraged(CombinedOptions(), 3);
  ExpectMetricsIdentical(seq, par);
}

TEST_F(ConcurrencyTest, RunManyMatchesSequentialRunsIncludingOutcomes) {
  std::vector<core::EngineOptions> configs;
  {
    core::EngineOptions baseline = CombinedOptions();
    baseline.strategy = ranking::Strategy::kBaseline;
    configs.push_back(baseline);
  }
  configs.push_back(CombinedOptions());
  {
    core::EngineOptions gps = CombinedOptions();
    gps.strategy = ranking::Strategy::kCombinedGps;
    configs.push_back(gps);
  }

  const eval::SimulationHarness parallel(world_, SimOptions(4));
  std::vector<std::vector<eval::ImpressionOutcome>> par_outcomes;
  const std::vector<eval::StrategyMetrics> par =
      parallel.RunMany(configs, &par_outcomes);
  ASSERT_EQ(par.size(), configs.size());
  ASSERT_EQ(par_outcomes.size(), configs.size());

  const eval::SimulationHarness sequential(world_, SimOptions(1));
  for (size_t c = 0; c < configs.size(); ++c) {
    std::vector<eval::ImpressionOutcome> seq_outcomes;
    const eval::StrategyMetrics seq =
        sequential.Run(configs[c], &seq_outcomes);
    ExpectMetricsIdentical(seq, par[c]);
    ExpectOutcomesIdentical(seq_outcomes, par_outcomes[c]);
  }
}

TEST_F(ConcurrencyTest, RunManyAveragedMatchesPerConfigRunAveraged) {
  std::vector<core::EngineOptions> configs;
  configs.push_back(CombinedOptions());
  {
    core::EngineOptions content = CombinedOptions();
    content.strategy = ranking::Strategy::kContentOnly;
    configs.push_back(content);
  }

  const eval::SimulationHarness parallel(world_, SimOptions(0));
  const std::vector<eval::StrategyMetrics> grid =
      parallel.RunManyAveraged(configs, 2);
  ASSERT_EQ(grid.size(), configs.size());

  const eval::SimulationHarness sequential(world_, SimOptions(1));
  for (size_t c = 0; c < configs.size(); ++c) {
    ExpectMetricsIdentical(sequential.RunAveraged(configs[c], 2), grid[c]);
  }
}

TEST_F(ConcurrencyTest, HarnessAccumulatesCacheStats) {
  const eval::SimulationHarness harness(world_, SimOptions(2));
  EXPECT_EQ(harness.accumulated_cache_stats().hits, 0u);
  (void)harness.RunAveraged(CombinedOptions(), 2);
  const CacheStats stats = harness.accumulated_cache_stats();
  // Every repetition serves each query many times; analyses are cached.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

// ---------- Cache eviction correctness in the engine ----------

TEST_F(ConcurrencyTest, ReanalysisAfterEvictionReproducesIdenticalServe) {
  core::EngineOptions tiny = CombinedOptions();
  tiny.query_cache_capacity = 1;
  tiny.query_cache_shards = 1;
  core::PwsEngine small(&world_->search_backend(), &world_->ontology(), tiny);
  core::PwsEngine big(&world_->search_backend(), &world_->ontology(),
                      CombinedOptions());
  small.RegisterUser(0);
  big.RegisterUser(0);

  const std::vector<std::string> queries = {"hotel booking", "city museum",
                                            "restaurant reviews"};
  // Two passes: the second pass re-analyzes every query on the tiny
  // engine (capacity 1 guarantees eviction between passes) and must
  // reproduce the large-capacity engine's pages exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& query : queries) {
      const auto small_page = small.Serve(0, query);
      const auto big_page = big.Serve(0, query);
      EXPECT_EQ(small_page.order, big_page.order) << query;
      EXPECT_EQ(small_page.features, big_page.features) << query;
    }
  }
  EXPECT_GT(small.query_cache_stats().evictions, 0u);
  EXPECT_EQ(big.query_cache_stats().evictions, 0u);
}

TEST_F(ConcurrencyTest, ObserveAfterEvictionStillSpreadsOntology) {
  // The page carries its content ontology, so Observe's similarity
  // spreading must not depend on the analysis still being cached.
  core::EngineOptions tiny = CombinedOptions();
  tiny.query_cache_capacity = 1;
  tiny.query_cache_shards = 1;
  core::PwsEngine small(&world_->search_backend(), &world_->ontology(), tiny);
  core::PwsEngine big(&world_->search_backend(), &world_->ontology(),
                      CombinedOptions());

  const auto& user = world_->users()[0];
  small.RegisterUser(user.id);
  big.RegisterUser(user.id);
  const auto& intents = world_->queries();
  ASSERT_GE(intents.size(), 4u);
  Random rng_small(99);
  Random rng_big(99);
  for (int round = 0; round < 2; ++round) {
    for (size_t q = 0; q < 3; ++q) {
      const auto& intent = intents[q];
      auto small_page = small.Serve(user.id, intent.text);
      EXPECT_NE(small_page.content_ontology(), nullptr);
      auto big_page = big.Serve(user.id, intent.text);
      // Serve the *next* query before observing: with capacity 1 the
      // observed page's analysis has been evicted by observation time.
      (void)small.Serve(user.id, intents[q + 1].text);
      const auto small_record = world_->click_model().Simulate(
          user, intent, small_page.ShownPage(), world_->corpus(), round,
          rng_small);
      const auto big_record = world_->click_model().Simulate(
          user, intent, big_page.ShownPage(), world_->corpus(), round,
          rng_big);
      small.Observe(user.id, small_page, small_record);
      big.Observe(user.id, big_page, big_record);
    }
  }
  EXPECT_GT(small.query_cache_stats().evictions, 0u);

  // Identical learning despite evictions: compare the learned profiles
  // on the concepts the big engine actually acquired.
  const auto& small_profile = small.user_profile(user.id);
  const auto& big_profile = big.user_profile(user.id);
  const auto top = big_profile.TopContentConcepts(20);
  EXPECT_FALSE(top.empty());
  for (const auto& [term, weight] : top) {
    EXPECT_DOUBLE_EQ(small_profile.ContentWeight(term), weight) << term;
  }
}

// ---------- Concurrent serving of one shared engine ----------

TEST_F(ConcurrencyTest, ConcurrentServeMatchesSequentialReference) {
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         CombinedOptions());
  const int num_users = static_cast<int>(world_->users().size());
  for (const auto& user : world_->users()) engine.RegisterUser(user.id);

  std::vector<std::string> queries;
  for (const auto& intent : world_->queries()) queries.push_back(intent.text);

  // Sequential reference orders from an identical engine.
  core::PwsEngine reference(&world_->search_backend(), &world_->ontology(),
                            CombinedOptions());
  for (const auto& user : world_->users()) reference.RegisterUser(user.id);
  std::vector<std::vector<int>> expected(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    expected[q] = reference.Serve(0, queries[q]).order;
  }

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = 0; q < queries.size(); ++q) {
        // Untrained users share priors, so every user's order matches
        // the user-0 reference; mixing users exercises the user map.
        const click::UserId user = (t + static_cast<int>(q)) % num_users;
        const auto page = engine.Serve(user, queries[q]);
        if (page.order != expected[q]) mismatch = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  const CacheStats stats = engine.query_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * queries.size());
}

TEST_F(ConcurrencyTest, ConcurrentRegisterUserAndServe) {
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         CombinedOptions());
  engine.RegisterUser(0);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      // Registration is idempotent and safe against concurrent Serve.
      engine.RegisterUser(t % 3);
      for (int i = 0; i < 5; ++i) {
        const auto page = engine.Serve(0, "hotel booking");
        if (page.order.empty()) std::abort();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(engine.registered_user_count(), 3);
}

// ---------- Parallel per-user training ----------

namespace {

// Drives `engine` through a deterministic serve/observe trajectory so
// every user accumulates training pairs. Identical inputs on two
// engines yield identical per-user pair sets.
void AccumulateTrainingPairs(core::PwsEngine& engine, eval::World* world) {
  Random rng(47);
  const auto& intents = world->queries();
  for (int round = 0; round < 3; ++round) {
    for (const auto& user : world->users()) {
      for (size_t q = 0; q < 4; ++q) {
        const auto& intent = intents[(q + round) % intents.size()];
        const auto page = engine.Serve(user.id, intent.text);
        const auto record = world->click_model().Simulate(
            user, intent, page.ShownPage(), world->corpus(), round, rng);
        engine.Observe(user.id, page, record);
      }
    }
  }
}

}  // namespace

TEST_F(ConcurrencyTest, TrainAllUsersParallelIsBitIdenticalToSerial) {
  core::EngineOptions serial_options = CombinedOptions();
  serial_options.train_threads = 1;
  core::EngineOptions parallel_options = CombinedOptions();
  parallel_options.train_threads = 4;

  core::PwsEngine serial(&world_->search_backend(), &world_->ontology(),
                         serial_options);
  core::PwsEngine parallel(&world_->search_backend(), &world_->ontology(),
                           parallel_options);
  for (const auto& user : world_->users()) {
    serial.RegisterUser(user.id);
    parallel.RegisterUser(user.id);
  }
  AccumulateTrainingPairs(serial, world_);
  AccumulateTrainingPairs(parallel, world_);

  serial.TrainAllUsers();
  parallel.TrainAllUsers();

  for (const auto& user : world_->users()) {
    const std::vector<double> sw = serial.user_model(user.id).weights();
    const std::vector<double> pw = parallel.user_model(user.id).weights();
    ASSERT_EQ(sw.size(), pw.size());
    for (size_t d = 0; d < sw.size(); ++d) {
      // Bit-exact: per-user training is fully independent, so the
      // fan-out must not perturb a single ULP.
      EXPECT_EQ(sw[d], pw[d]) << "user " << user.id << " dim " << d;
    }
    EXPECT_TRUE(serial.user_model(user.id).is_trained());
  }
}

TEST_F(ConcurrencyTest, ConcurrentTrainAllUsersAndServe) {
  // TrainAllUsers is the sanctioned concurrent-training path: it may
  // run while other threads Serve. This test exists primarily for the
  // TSan build, which fails on any data race between the training
  // fan-out and the serve path.
  core::EngineOptions options = CombinedOptions();
  options.train_threads = 2;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  for (const auto& user : world_->users()) engine.RegisterUser(user.id);
  AccumulateTrainingPairs(engine, world_);

  std::atomic<bool> stop{false};
  std::atomic<bool> empty_page{false};
  std::vector<std::thread> servers;
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([&, t] {
      const auto& intents = world_->queries();
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& intent = intents[(t + i++) % intents.size()];
        const auto page = engine.Serve(t % 5, intent.text);
        if (page.order.empty()) empty_page = true;
      }
    });
  }
  for (int round = 0; round < 5; ++round) engine.TrainAllUsers();
  stop = true;
  for (auto& th : servers) th.join();
  EXPECT_FALSE(empty_page.load());
  for (const auto& user : world_->users()) {
    EXPECT_TRUE(engine.user_model(user.id).is_trained());
  }
}

// ---------- Durability under concurrency ----------

TEST_F(ConcurrencyTest, SaveStateConcurrentWithServeAndTrainAllUsers) {
  // SaveState's documented contract: safe concurrently with Serve and
  // TrainAllUsers (models are read via their published snapshots). The
  // TSan build turns any violation into a hard failure.
  const std::string base = ::testing::TempDir() + "/pws_conc_save";
  const std::string wal_path = base + ".wal";
  RemoveWalFiles(wal_path);

  core::EngineOptions options = CombinedOptions();
  options.train_threads = 2;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  for (const auto& user : world_->users()) engine.RegisterUser(user.id);
  ASSERT_TRUE(engine.EnableWal(wal_path).ok());
  AccumulateTrainingPairs(engine, world_);

  std::atomic<bool> stop{false};
  std::vector<std::thread> servers;
  for (int t = 0; t < 3; ++t) {
    servers.emplace_back([&, t] {
      const auto& intents = world_->queries();
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)engine.Serve(t % 5, intents[(t + i++) % intents.size()].text);
      }
    });
  }
  std::thread trainer([&engine] {
    for (int round = 0; round < 4; ++round) engine.TrainAllUsers();
  });
  // Snapshots to distinct paths while serving and training run.
  std::vector<std::string> snapshots;
  for (int s = 0; s < 4; ++s) {
    const std::string path = base + "_" + std::to_string(s);
    EXPECT_TRUE(engine.SaveState(path).ok()) << "snapshot " << s;
    snapshots.push_back(path);
  }
  trainer.join();
  stop = true;
  for (auto& th : servers) th.join();

  // Every snapshot taken mid-flight is loadable and carries all users.
  for (const std::string& path : snapshots) {
    core::PwsEngine restored(&world_->search_backend(), &world_->ontology(),
                             CombinedOptions());
    EXPECT_TRUE(restored.RestoreState(path).ok()) << path;
    EXPECT_EQ(restored.registered_user_count(),
              static_cast<int>(world_->users().size()))
        << path;
    std::remove(path.c_str());
  }
  RemoveWalFiles(wal_path);
}

TEST_F(ConcurrencyTest, ConcurrentObservesAllReachTheWalAndReplayCleanly) {
  // Observe is safe concurrently across different users; the WAL
  // serializes the appends internally. Every observation must land as
  // exactly one intact frame, and replay must rebuild each user's
  // learned state — per-user event order is preserved (appends happen in
  // the observing thread), and users do not affect each other.
  const std::string base = ::testing::TempDir() + "/pws_conc_observe";
  const std::string wal_path = base + ".wal";
  std::remove(base.c_str());
  RemoveWalFiles(wal_path);

  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         CombinedOptions());
  for (const auto& user : world_->users()) engine.RegisterUser(user.id);
  ASSERT_TRUE(engine.EnableWal(wal_path).ok());

  constexpr int kObservesPerUser = 15;
  const auto& intents = world_->queries();
  std::vector<std::thread> threads;
  for (const auto& user : world_->users()) {
    threads.emplace_back([&engine, &intents, user_id = user.id] {
      for (int i = 0; i < kObservesPerUser; ++i) {
        const auto& intent =
            intents[(static_cast<size_t>(user_id) + i) % intents.size()];
        const auto page = engine.Serve(user_id, intent.text);
        click::ClickRecord record;
        const size_t clicked = 1 + (i % 3);
        for (size_t j = 0; j < page.order.size(); ++j) {
          click::Interaction interaction;
          interaction.doc = page.backend_page().results[page.order[j]].doc;
          interaction.rank = static_cast<int>(j);
          if (j == clicked) {
            interaction.clicked = true;
            interaction.dwell_units = 95.5 + i;
            interaction.last_click_in_session = true;
          }
          record.interactions.push_back(interaction);
        }
        engine.Observe(user_id, page, record);
      }
    });
  }
  for (auto& th : threads) th.join();

  // The WAL is sharded: each user's records land on one shard file, and
  // the union across shards must be exactly one intact frame per
  // observation, with globally unique sequence numbers (all shards draw
  // from one shared sequence space).
  size_t total_records = 0;
  std::vector<uint64_t> seqs;
  for (const std::string& path : engine.wal_paths()) {
    const auto replay = io::WriteAheadLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << path;
    EXPECT_FALSE(replay->torn_tail) << path;
    total_records += replay->records.size();
    for (const auto& record : replay->records) seqs.push_back(record.seq);
  }
  EXPECT_EQ(total_records, world_->users().size() * kObservesPerUser);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_TRUE(std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end())
      << "duplicate sequence numbers across WAL shards";

  // WAL-only recovery (no snapshot was ever written) rebuilds each
  // user's learned state exactly.
  core::PwsEngine restored(&world_->search_backend(), &world_->ontology(),
                           CombinedOptions());
  ASSERT_TRUE(restored.EnableWal(wal_path).ok());
  ASSERT_TRUE(restored.RestoreState(base).ok());
  for (const auto& user : world_->users()) {
    EXPECT_EQ(restored.training_pair_count(user.id),
              engine.training_pair_count(user.id))
        << "user " << user.id;
    EXPECT_EQ(restored.user_profile(user.id).TopContentConcepts(10),
              engine.user_profile(user.id).TopContentConcepts(10))
        << "user " << user.id;
  }
  RemoveWalFiles(wal_path);
}

// ---------- Satellite: priors land on their intended features ----------

TEST_F(ConcurrencyTest, RegisterUserPriorsLandOnNamedFeatureIndexes) {
  core::EngineOptions options = CombinedOptions();
  // kCombinedGps leaves every feature unmasked, so each configured
  // prior must appear at exactly its named index.
  options.strategy = ranking::Strategy::kCombinedGps;
  options.query_location_match_prior = 0.25;
  options.location_affinity_prior = 0.5;
  core::PwsEngine engine(&world_->search_backend(), &world_->ontology(),
                         options);
  engine.RegisterUser(0);
  const std::vector<double> prior = engine.user_model(0).prior();
  ASSERT_EQ(prior.size(), static_cast<size_t>(ranking::kFeatureCount));
  EXPECT_DOUBLE_EQ(prior[ranking::kQueryLocationMatchIndex], 0.25);
  EXPECT_DOUBLE_EQ(prior[ranking::kProfileLocationAffinityIndex], 0.5);
  // The GPS prior reuses the location-affinity prior strength.
  EXPECT_DOUBLE_EQ(prior[ranking::kGpsFeatureIndex], 0.5);
  // Every other dimension stays neutral.
  for (int d = 0; d < ranking::kFeatureCount; ++d) {
    if (d == ranking::kQueryLocationMatchIndex ||
        d == ranking::kProfileLocationAffinityIndex ||
        d == ranking::kGpsFeatureIndex) {
      continue;
    }
    EXPECT_DOUBLE_EQ(prior[d], 0.0) << "dimension " << d;
  }
}

}  // namespace
}  // namespace pws
